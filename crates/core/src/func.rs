//! The Ark function layer (paper §4.2): checked, procedural construction of
//! dynamical graphs against a language definition.
//!
//! [`GraphBuilder`] is the programmatic equivalent of an Ark `func` body:
//! `node`, `edge`, `set-attr`, `set-init`, and `set-switch` statements, with
//! all the semantic checks of §4.2 (types declared, datatype admission,
//! const / fixed restrictions) and the §4.3 hardware semantics (mismatch
//! sampling seeded per invocation).

use crate::dg::{EdgeId, Graph, GraphError, NodeId};
use crate::lang::{AttrDef, Language};
use crate::mismatch::{MismatchSampler, ParamKind, ParamSite, ParamTarget};
use crate::types::{Mismatch, Value};
use std::fmt;

/// An error raised by a function-layer statement.
#[derive(Debug, Clone, PartialEq)]
pub enum FuncError {
    /// Underlying graph error (duplicate/unknown names).
    Graph(GraphError),
    /// Reference to a type not declared in the language.
    UnknownType(String),
    /// Reference to an attribute not declared on the entity's type.
    UnknownAttr {
        /// Entity name.
        entity: String,
        /// Attribute name.
        attr: String,
    },
    /// Assigned value does not inhabit the declared datatype.
    TypeMismatch {
        /// Entity name.
        entity: String,
        /// Attribute name (or `init(i)`).
        attr: String,
        /// The declared type, rendered.
        expected: String,
        /// The offending value, rendered.
        got: String,
    },
    /// A `const` attribute was assigned from a function argument (§4.3).
    ConstFromArg {
        /// Entity name.
        entity: String,
        /// Attribute name.
        attr: String,
    },
    /// `set-switch` applied to a `fixed` edge type (§4.3).
    SwitchFixedEdge(String),
    /// Initial-value index out of range for the node's order.
    BadInitIndex {
        /// Node name.
        node: String,
        /// Offending derivative index.
        index: usize,
        /// Node order.
        order: usize,
    },
    /// An attribute or initial value was never assigned (and has no default).
    Unassigned {
        /// Entity name.
        entity: String,
        /// Attribute name (or `init(i)`).
        attr: String,
    },
    /// A `set_*_param` statement was issued on a non-parametric builder.
    NotParametric {
        /// Entity name.
        entity: String,
        /// Attribute name (or `init(i)`).
        attr: String,
    },
}

impl fmt::Display for FuncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuncError::Graph(e) => write!(f, "{e}"),
            FuncError::UnknownType(t) => write!(f, "unknown type `{t}`"),
            FuncError::UnknownAttr { entity, attr } => {
                write!(f, "no attribute `{attr}` on `{entity}`")
            }
            FuncError::TypeMismatch {
                entity,
                attr,
                expected,
                got,
            } => {
                write!(
                    f,
                    "value {got} does not inhabit {expected} for {entity}.{attr}"
                )
            }
            FuncError::ConstFromArg { entity, attr } => {
                write!(
                    f,
                    "const attribute {entity}.{attr} cannot be set from a function argument"
                )
            }
            FuncError::SwitchFixedEdge(e) => {
                write!(f, "edge `{e}` has a fixed type and cannot be switched")
            }
            FuncError::BadInitIndex { node, index, order } => {
                write!(
                    f,
                    "init({index}) out of range for `{node}` of order {order}"
                )
            }
            FuncError::Unassigned { entity, attr } => {
                write!(f, "{entity}.{attr} was never assigned and has no default")
            }
            FuncError::NotParametric { entity, attr } => {
                write!(
                    f,
                    "{entity}.{attr}: parameter slots require a parametric builder \
                     (GraphBuilder::new_parametric)"
                )
            }
        }
    }
}

impl std::error::Error for FuncError {}

impl From<GraphError> for FuncError {
    fn from(e: GraphError) -> Self {
        FuncError::Graph(e)
    }
}

/// Checked builder for dynamical graphs (one Ark function invocation).
///
/// # Examples
///
/// ```
/// use ark_core::func::GraphBuilder;
/// use ark_core::lang::{LanguageBuilder, NodeType, EdgeType, Reduction};
/// use ark_core::types::SigType;
///
/// let lang = LanguageBuilder::new("demo")
///     .node_type(
///         ark_core::lang::NodeType::new("V", 1, Reduction::Sum)
///             .attr("c", SigType::real(0.0, 1.0))
///             .init_default(SigType::real(-1.0, 1.0), 0.0),
///     )
///     .edge_type(EdgeType::new("E"))
///     .finish()?;
/// let mut b = GraphBuilder::new(&lang, 0);
/// b.node("n0", "V")?;
/// b.set_attr("n0", "c", 0.5)?;
/// let graph = b.finish()?;
/// assert_eq!(graph.num_nodes(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder<'l> {
    lang: &'l Language,
    graph: Graph,
    mode: SampleMode,
}

/// How the builder handles mismatch-annotated (and explicitly designated)
/// values: sample them now for one fabricated instance, or record them as
/// parameter sites for a compile-once/parameterize-many workflow.
#[derive(Debug, Clone)]
enum SampleMode {
    /// Sample mismatched values eagerly (one fabricated instance).
    Seeded(MismatchSampler),
    /// Store nominal values and record a [`ParamSite`] per draw, in the
    /// exact order a seeded builder would have drawn them.
    Record(Vec<ParamSite>),
}

/// A graph whose mismatch-perturbed (and explicitly designated) values are
/// *parameter slots* instead of baked-in samples: build once with
/// [`GraphBuilder::finish_parametric`], compile once with
/// [`crate::CompiledSystem::compile_parametric`], then run each fabricated
/// instance with a fresh parameter vector — no recompilation.
#[derive(Debug, Clone)]
pub struct ParametricGraph {
    /// The graph, holding nominal values at every parameter site.
    pub graph: Graph,
    /// The parameter sites, in sampling order (site `i` = slot `i`).
    pub sites: Vec<ParamSite>,
}

impl<'l> GraphBuilder<'l> {
    /// Start building a graph in `lang`. The `seed` selects the fabricated
    /// instance: all mismatched attributes sampled by this builder derive
    /// from it (§4.3).
    pub fn new(lang: &'l Language, seed: u64) -> Self {
        GraphBuilder {
            lang,
            graph: Graph::new(lang.name()),
            mode: SampleMode::Seeded(MismatchSampler::new(seed)),
        }
    }

    /// Start building a *parametric* graph: mismatch-annotated assignments
    /// store their nominal value and record a parameter site instead of
    /// sampling, and [`GraphBuilder::set_attr_param`] /
    /// [`GraphBuilder::set_init_param`] designate further explicit slots.
    /// Finish with [`GraphBuilder::finish_parametric`].
    pub fn new_parametric(lang: &'l Language) -> Self {
        GraphBuilder {
            lang,
            graph: Graph::new(lang.name()),
            mode: SampleMode::Record(Vec::new()),
        }
    }

    /// The language this builder checks against.
    pub fn lang(&self) -> &Language {
        self.lang
    }

    /// `node v : T` — add a node of a declared node type.
    ///
    /// # Errors
    ///
    /// [`FuncError::UnknownType`] or a duplicate-name [`FuncError::Graph`].
    pub fn node(&mut self, name: &str, ty: &str) -> Result<NodeId, FuncError> {
        let nt = self
            .lang
            .node_type(ty)
            .ok_or_else(|| FuncError::UnknownType(ty.into()))?;
        Ok(self.graph.add_node(name, ty, nt.order)?)
    }

    /// `edge <src, dst> v : T` — add an edge of a declared edge type.
    ///
    /// # Errors
    ///
    /// [`FuncError::UnknownType`], unknown endpoints, or duplicate names.
    pub fn edge(
        &mut self,
        name: &str,
        ty: &str,
        src: &str,
        dst: &str,
    ) -> Result<EdgeId, FuncError> {
        self.lang
            .edge_type(ty)
            .ok_or_else(|| FuncError::UnknownType(ty.into()))?;
        let s = self.graph.node_id(src)?;
        let d = self.graph.node_id(dst)?;
        Ok(self.graph.add_edge(name, ty, s, d)?)
    }

    /// `set-attr v.a = value` — assign an attribute (constant provenance).
    ///
    /// Mismatch-annotated attributes store a sampled value; the *nominal*
    /// value is range-checked.
    ///
    /// # Errors
    ///
    /// Unknown entity/attribute or [`FuncError::TypeMismatch`].
    pub fn set_attr(
        &mut self,
        entity: &str,
        attr: &str,
        value: impl Into<Value>,
    ) -> Result<(), FuncError> {
        self.set_attr_inner(entity, attr, value.into(), false)
    }

    /// `set-attr v.a = arg` — assign an attribute from a function argument.
    /// Identical to [`GraphBuilder::set_attr`] but also enforces the `const`
    /// restriction of §4.3.
    ///
    /// # Errors
    ///
    /// Additionally [`FuncError::ConstFromArg`] for `const` attributes.
    pub fn set_attr_from_arg(
        &mut self,
        entity: &str,
        attr: &str,
        value: impl Into<Value>,
    ) -> Result<(), FuncError> {
        self.set_attr_inner(entity, attr, value.into(), true)
    }

    fn attr_def(&self, entity: &str, attr: &str) -> Result<(bool, AttrDef), FuncError> {
        // Returns (is_node, def).
        if let Ok(id) = self.graph.node_id(entity) {
            let ty = &self.graph.node(id).ty;
            let nt = self
                .lang
                .node_type(ty)
                .expect("node type checked at insertion");
            let def = nt.attrs.get(attr).ok_or_else(|| FuncError::UnknownAttr {
                entity: entity.into(),
                attr: attr.into(),
            })?;
            return Ok((true, def.clone()));
        }
        let id = self
            .graph
            .edge_id(entity)
            .map_err(|_| GraphError::UnknownNode(entity.into()))?;
        let ty = &self.graph.edge(id).ty;
        let et = self
            .lang
            .edge_type(ty)
            .expect("edge type checked at insertion");
        let def = et.attrs.get(attr).ok_or_else(|| FuncError::UnknownAttr {
            entity: entity.into(),
            attr: attr.into(),
        })?;
        Ok((false, def.clone()))
    }

    fn set_attr_inner(
        &mut self,
        entity: &str,
        attr: &str,
        value: Value,
        from_arg: bool,
    ) -> Result<(), FuncError> {
        let (is_node, def) = self.attr_def(entity, attr)?;
        if def.ty.is_const && from_arg {
            return Err(FuncError::ConstFromArg {
                entity: entity.into(),
                attr: attr.into(),
            });
        }
        if !def.ty.admits(&value) {
            return Err(FuncError::TypeMismatch {
                entity: entity.into(),
                attr: attr.into(),
                expected: def.ty.to_string(),
                got: value.to_string(),
            });
        }
        let stored = self.apply_mismatch(entity, attr, &def, value);
        if is_node {
            let id = self.graph.node_id(entity)?;
            self.graph.node_mut(id).attrs.insert(attr.into(), stored);
        } else {
            let id = self.graph.edge_id(entity)?;
            self.graph.edge_mut(id).attrs.insert(attr.into(), stored);
        }
        Ok(())
    }

    fn apply_mismatch(&mut self, entity: &str, attr: &str, def: &AttrDef, value: Value) -> Value {
        // `Mismatch` is `Copy`: take it by value so `self` stays free for
        // the mutable sampling call.
        match (def.ty.mismatch, &value) {
            (Some(mm), Value::Real(x)) => {
                Value::Real(self.sample_or_record(entity, ParamTarget::Attr(attr.into()), *x, &mm))
            }
            (Some(mm), Value::Int(i)) => Value::Real(self.sample_or_record(
                entity,
                ParamTarget::Attr(attr.into()),
                *i as f64,
                &mm,
            )),
            _ => value,
        }
    }

    /// Sample a mismatched value (seeded mode) or record a parameter site
    /// and keep the nominal (parametric mode). Draw order is identical in
    /// both modes, which is what lets [`crate::mismatch::sample_param_vector`]
    /// replay a seeded builder exactly.
    fn sample_or_record(
        &mut self,
        entity: &str,
        target: ParamTarget,
        nominal: f64,
        mm: &Mismatch,
    ) -> f64 {
        match &mut self.mode {
            SampleMode::Seeded(sampler) => sampler.sample(nominal, mm),
            SampleMode::Record(sites) => {
                sites.push(ParamSite {
                    entity: entity.into(),
                    target,
                    nominal,
                    kind: ParamKind::Mismatch(*mm),
                });
                nominal
            }
        }
    }

    /// Record an *explicit* parameter site (parametric mode only): the slot
    /// holds `nominal` until the caller overrides it per instance.
    fn record_explicit(
        &mut self,
        entity: &str,
        target: ParamTarget,
        nominal: f64,
    ) -> Result<(), FuncError> {
        match &mut self.mode {
            SampleMode::Record(sites) => {
                sites.push(ParamSite {
                    entity: entity.into(),
                    target: target.clone(),
                    nominal,
                    kind: ParamKind::Explicit,
                });
                Ok(())
            }
            SampleMode::Seeded(_) => Err(FuncError::NotParametric {
                entity: entity.into(),
                attr: target.to_string(),
            }),
        }
    }

    /// `set-attr v.a = param(nominal)` — designate the attribute as an
    /// explicit parameter slot holding `nominal` (range-checked). Requires a
    /// [`GraphBuilder::new_parametric`] builder; per-instance values are
    /// supplied through the compiled system's parameter vector.
    ///
    /// # Errors
    ///
    /// [`FuncError::NotParametric`] on a seeded builder, plus all the errors
    /// of [`GraphBuilder::set_attr`].
    pub fn set_attr_param(
        &mut self,
        entity: &str,
        attr: &str,
        nominal: f64,
    ) -> Result<(), FuncError> {
        let (is_node, def) = self.attr_def(entity, attr)?;
        if !def.ty.admits(&Value::Real(nominal)) {
            return Err(FuncError::TypeMismatch {
                entity: entity.into(),
                attr: attr.into(),
                expected: def.ty.to_string(),
                got: nominal.to_string(),
            });
        }
        self.record_explicit(entity, ParamTarget::Attr(attr.into()), nominal)?;
        if is_node {
            let id = self.graph.node_id(entity)?;
            self.graph
                .node_mut(id)
                .attrs
                .insert(attr.into(), Value::Real(nominal));
        } else {
            let id = self.graph.edge_id(entity)?;
            self.graph
                .edge_mut(id)
                .attrs
                .insert(attr.into(), Value::Real(nominal));
        }
        Ok(())
    }

    /// `set-init v(i) = param(nominal)` — designate an initial value as an
    /// explicit parameter slot (see [`GraphBuilder::set_attr_param`]).
    ///
    /// # Errors
    ///
    /// [`FuncError::NotParametric`] on a seeded builder, plus all the errors
    /// of [`GraphBuilder::set_init`].
    pub fn set_init_param(
        &mut self,
        node: &str,
        index: usize,
        nominal: f64,
    ) -> Result<(), FuncError> {
        let id = self.graph.node_id(node)?;
        let ty = self.graph.node(id).ty.clone();
        let nt = self.lang.node_type(&ty).expect("checked at insertion");
        if index >= nt.order {
            return Err(FuncError::BadInitIndex {
                node: node.into(),
                index,
                order: nt.order,
            });
        }
        let def = &nt.inits[index];
        if !def.ty.admits(&Value::Real(nominal)) {
            return Err(FuncError::TypeMismatch {
                entity: node.into(),
                attr: format!("init({index})"),
                expected: def.ty.to_string(),
                got: nominal.to_string(),
            });
        }
        self.record_explicit(node, ParamTarget::Init(index), nominal)?;
        self.graph.node_mut(id).inits[index] = Some(nominal);
        Ok(())
    }

    /// `set-init v(i) = x` — set the initial value of the `i`-th derivative.
    ///
    /// # Errors
    ///
    /// Unknown node, out-of-range index, or a value outside the declared
    /// initial-value type.
    pub fn set_init(&mut self, node: &str, index: usize, value: f64) -> Result<(), FuncError> {
        let id = self.graph.node_id(node)?;
        let ty = self.graph.node(id).ty.clone();
        let nt = self.lang.node_type(&ty).expect("checked at insertion");
        if index >= nt.order {
            return Err(FuncError::BadInitIndex {
                node: node.into(),
                index,
                order: nt.order,
            });
        }
        let def = &nt.inits[index];
        if !def.ty.admits(&Value::Real(value)) {
            return Err(FuncError::TypeMismatch {
                entity: node.into(),
                attr: format!("init({index})"),
                expected: def.ty.to_string(),
                got: value.to_string(),
            });
        }
        let stored = match def.ty.mismatch {
            Some(mm) => self.sample_or_record(node, ParamTarget::Init(index), value, &mm),
            None => value,
        };
        self.graph.node_mut(id).inits[index] = Some(stored);
        Ok(())
    }

    /// `set-switch v when b` — set an edge's switch state (already-evaluated
    /// condition).
    ///
    /// # Errors
    ///
    /// [`FuncError::SwitchFixedEdge`] for `fixed` edge types.
    pub fn set_switch(&mut self, edge: &str, on: bool) -> Result<(), FuncError> {
        let id = self.graph.edge_id(edge)?;
        let ty = &self.graph.edge(id).ty;
        let et = self.lang.edge_type(ty).expect("checked at insertion");
        if et.fixed {
            return Err(FuncError::SwitchFixedEdge(edge.into()));
        }
        self.graph.edge_mut(id).on = on;
        Ok(())
    }

    /// Finish the invocation: fill unset attributes and initial values from
    /// their declared defaults (sampling mismatch), then check completeness.
    ///
    /// # Errors
    ///
    /// [`FuncError::Unassigned`] for any attribute or initial value that was
    /// neither set nor given a default.
    pub fn finish(mut self) -> Result<Graph, FuncError> {
        self.fill_defaults()?;
        Ok(self.graph)
    }

    /// Finish a [`GraphBuilder::new_parametric`] invocation: fill defaults
    /// (recording parameter sites for mismatch-annotated ones) and return
    /// the graph together with its ordered parameter sites.
    ///
    /// # Errors
    ///
    /// [`FuncError::NotParametric`] on a seeded builder, otherwise as
    /// [`GraphBuilder::finish`].
    pub fn finish_parametric(mut self) -> Result<ParametricGraph, FuncError> {
        if matches!(self.mode, SampleMode::Seeded(_)) {
            return Err(FuncError::NotParametric {
                entity: self.graph.lang_name().to_string(),
                attr: "finish_parametric".into(),
            });
        }
        self.fill_defaults()?;
        let SampleMode::Record(sites) = self.mode else {
            unreachable!("checked above");
        };
        Ok(ParametricGraph {
            graph: self.graph,
            sites,
        })
    }

    fn fill_defaults(&mut self) -> Result<(), FuncError> {
        // Defaults for node attributes and inits.
        for i in 0..self.graph.num_nodes() {
            let id = NodeId(i);
            let (name, ty) = (
                self.graph.node(id).name.clone(),
                self.graph.node(id).ty.clone(),
            );
            let nt = self.lang.node_type(&ty).expect("checked").clone();
            for (an, def) in &nt.attrs {
                if self.graph.node(id).attrs.contains_key(an) {
                    continue;
                }
                match &def.default {
                    Some(v) => {
                        let stored = self.apply_mismatch(&name, an, def, v.clone());
                        self.graph.node_mut(id).attrs.insert(an.clone(), stored);
                    }
                    None => {
                        return Err(FuncError::Unassigned {
                            entity: name,
                            attr: an.clone(),
                        })
                    }
                }
            }
            for (k, def) in nt.inits.iter().enumerate() {
                if self.graph.node(id).inits[k].is_some() {
                    continue;
                }
                match def.default.as_ref().and_then(Value::as_real) {
                    Some(x) => {
                        let stored = match def.ty.mismatch {
                            Some(mm) => self.sample_or_record(&name, ParamTarget::Init(k), x, &mm),
                            None => x,
                        };
                        self.graph.node_mut(id).inits[k] = Some(stored);
                    }
                    None => {
                        return Err(FuncError::Unassigned {
                            entity: name,
                            attr: format!("init({k})"),
                        })
                    }
                }
            }
        }
        // Defaults for edge attributes.
        for i in 0..self.graph.num_edges() {
            let id = EdgeId(i);
            let (name, ty) = (
                self.graph.edge(id).name.clone(),
                self.graph.edge(id).ty.clone(),
            );
            let et = self.lang.edge_type(&ty).expect("checked").clone();
            for (an, def) in &et.attrs {
                if self.graph.edge(id).attrs.contains_key(an) {
                    continue;
                }
                match &def.default {
                    Some(v) => {
                        let stored = self.apply_mismatch(&name, an, def, v.clone());
                        self.graph.edge_mut(id).attrs.insert(an.clone(), stored);
                    }
                    None => {
                        return Err(FuncError::Unassigned {
                            entity: name,
                            attr: an.clone(),
                        })
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{EdgeType, LanguageBuilder, NodeType, Reduction};
    use crate::types::SigType;
    use ark_expr::{Expr, Lambda};

    fn lang() -> Language {
        LanguageBuilder::new("t")
            .node_type(
                NodeType::new("V", 1, Reduction::Sum)
                    .attr("c", SigType::real(1e-10, 1e-8))
                    .attr_default("g", SigType::real(0.0, f64::INFINITY), 0.0)
                    .init_default(SigType::real(-10.0, 10.0), 0.0),
            )
            .node_type(
                NodeType::new("Vm", 1, Reduction::Sum)
                    .inherit("V")
                    .attr("c", SigType::real(1e-10, 1e-8).with_mismatch(0.0, 0.1)),
            )
            .node_type(
                NodeType::new("Inp", 0, Reduction::Sum)
                    .attr("fn", SigType::lambda(1))
                    .attr_default("r", SigType::real(0.0, f64::INFINITY).constant(), 1.0),
            )
            .edge_type(EdgeType::new("E"))
            .edge_type(EdgeType::new("F").fixed())
            .finish()
            .unwrap()
    }

    #[test]
    fn build_simple_graph() {
        let l = lang();
        let mut b = GraphBuilder::new(&l, 0);
        b.node("a", "V").unwrap();
        b.node("b", "V").unwrap();
        b.edge("e", "E", "a", "b").unwrap();
        b.set_attr("a", "c", 1e-9).unwrap();
        b.set_attr("b", "c", 2e-9).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.attr_value("a", "g"), Some(&Value::Real(0.0))); // default
        assert_eq!(g.node(g.node_id("a").unwrap()).inits[0], Some(0.0)); // default init
    }

    #[test]
    fn unknown_type_rejected() {
        let l = lang();
        let mut b = GraphBuilder::new(&l, 0);
        assert!(matches!(b.node("a", "Zap"), Err(FuncError::UnknownType(_))));
        b.node("a", "V").unwrap();
        assert!(matches!(
            b.edge("e", "Zap", "a", "a"),
            Err(FuncError::UnknownType(_))
        ));
    }

    #[test]
    fn unknown_attr_rejected() {
        let l = lang();
        let mut b = GraphBuilder::new(&l, 0);
        b.node("a", "V").unwrap();
        assert!(matches!(
            b.set_attr("a", "nope", 1.0),
            Err(FuncError::UnknownAttr { .. })
        ));
    }

    #[test]
    fn range_violation_rejected() {
        let l = lang();
        let mut b = GraphBuilder::new(&l, 0);
        b.node("a", "V").unwrap();
        assert!(matches!(
            b.set_attr("a", "c", 1.0),
            Err(FuncError::TypeMismatch { .. })
        ));
        // Negative conductance out of [0, inf).
        assert!(matches!(
            b.set_attr("a", "g", -1.0),
            Err(FuncError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn lambda_attr_assignment() {
        let l = lang();
        let mut b = GraphBuilder::new(&l, 0);
        b.node("in", "Inp").unwrap();
        let pulse = Lambda::new(
            vec!["t"],
            Expr::Call(
                "pulse".into(),
                vec![Expr::arg("t"), 0.0.into(), 2e-8.into()],
            ),
        );
        b.set_attr("in", "fn", pulse.clone()).unwrap();
        // Wrong arity rejected.
        let bad = Lambda::new(Vec::<String>::new(), Expr::constant(0.0));
        assert!(matches!(
            b.set_attr("in", "fn", bad),
            Err(FuncError::TypeMismatch { .. })
        ));
        let g = b.finish().unwrap();
        assert_eq!(g.attr_value("in", "fn").unwrap().as_lambda(), Some(&pulse));
    }

    #[test]
    fn const_attr_from_arg_rejected_but_literal_ok() {
        let l = lang();
        let mut b = GraphBuilder::new(&l, 0);
        b.node("in", "Inp").unwrap();
        assert!(matches!(
            b.set_attr_from_arg("in", "r", 2.0),
            Err(FuncError::ConstFromArg { .. })
        ));
        b.set_attr("in", "r", 2.0).unwrap();
    }

    #[test]
    fn mismatch_sampling_is_seeded() {
        let l = lang();
        let build = |seed| {
            let mut b = GraphBuilder::new(&l, seed);
            b.node("a", "Vm").unwrap();
            b.set_attr("a", "c", 1e-9).unwrap();
            b.finish().unwrap()
        };
        let g1 = build(1);
        let g1b = build(1);
        let g2 = build(2);
        let c = |g: &Graph| g.attr_value("a", "c").unwrap().as_real().unwrap();
        // Same seed → same instance; different seed → different instance.
        assert_eq!(c(&g1), c(&g1b));
        assert_ne!(c(&g1), c(&g2));
        // Sampled value differs from nominal but is near it.
        assert_ne!(c(&g1), 1e-9);
        assert!((c(&g1) - 1e-9).abs() < 5e-10);
    }

    #[test]
    fn non_mismatched_attr_stored_exactly() {
        let l = lang();
        let mut b = GraphBuilder::new(&l, 9);
        b.node("a", "V").unwrap();
        b.set_attr("a", "c", 1e-9).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.attr_value("a", "c"), Some(&Value::Real(1e-9)));
    }

    #[test]
    fn switch_rules() {
        let l = lang();
        let mut b = GraphBuilder::new(&l, 0);
        b.node("a", "V").unwrap();
        b.set_attr("a", "c", 1e-9).unwrap();
        b.edge("e", "E", "a", "a").unwrap();
        b.edge("f", "F", "a", "a").unwrap();
        b.set_switch("e", false).unwrap();
        assert!(matches!(
            b.set_switch("f", false),
            Err(FuncError::SwitchFixedEdge(_))
        ));
        let g = b.finish().unwrap();
        assert!(!g.edge(g.edge_id("e").unwrap()).on);
        assert!(g.edge(g.edge_id("f").unwrap()).on);
    }

    #[test]
    fn set_init_checks() {
        let l = lang();
        let mut b = GraphBuilder::new(&l, 0);
        b.node("a", "V").unwrap();
        b.set_init("a", 0, 1.5).unwrap();
        assert!(matches!(
            b.set_init("a", 1, 0.0),
            Err(FuncError::BadInitIndex { .. })
        ));
        assert!(matches!(
            b.set_init("a", 0, 100.0), // outside real[-10,10]
            Err(FuncError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn missing_required_attr_detected_at_finish() {
        let l = lang();
        let mut b = GraphBuilder::new(&l, 0);
        b.node("a", "V").unwrap(); // `c` has no default
        assert!(matches!(b.finish(), Err(FuncError::Unassigned { .. })));
    }

    #[test]
    fn derived_node_substitutable() {
        // Vm can be used anywhere V was used: builder accepts it and the
        // inherited default for `g` still applies.
        let l = lang();
        let mut b = GraphBuilder::new(&l, 5);
        b.node("a", "Vm").unwrap();
        b.set_attr("a", "c", 1e-9).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.attr_value("a", "g"), Some(&Value::Real(0.0)));
    }
}
