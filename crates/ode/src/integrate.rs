//! The solver configurations: fixed-step and adaptive integrators.
//!
//! The Ark compiler produces an [`OdeSystem`]; these solvers run the
//! transient simulations behind every figure in the paper. Since the
//! solver/observer redesign they are thin configurations of the unified
//! [`Solver`] trait — a [`Stepper`](crate::Stepper) composed with a
//! [`StepControl`] policy (see [`crate::solver`]):
//!
//! * [`Rk4`] (and [`Euler`]) — fixed-step explicit methods
//!   ([`Fixed`] control), predictable cost, used for the TLN/OBC
//!   simulations where the step is set by the signal bandwidth;
//! * [`DormandPrince`] — adaptive 5(4) embedded Runge–Kutta with PI step
//!   control ([`Adaptive`]), used when stiffness varies across a run (CNN
//!   mismatch studies);
//! * [`VotingDormandPrince`] — the lane-batched adaptive mode
//!   ([`VotingAdaptive`] control): min-over-lanes step voting with
//!   per-lane early-exit masks, opt-in because the voted step grid trades
//!   bit-identity across lane widths for ensemble throughput.
//!
//! Every solver keeps its historical inherent entry points — `integrate`
//! (allocating), `integrate_with` (caller-provided [`OdeWorkspace`], zero
//! per-step allocations), and `integrate_lanes_with` (lockstep lanes) —
//! as wrappers pairing [`Solver::solve`] with a
//! [`Strided`] trajectory recorder. All of them produce
//! trajectories bit-identical to the pre-redesign implementations.

use crate::observe::Strided;
use crate::solver::{
    Adaptive, Dp45Stages, Elem, EulerStages, Fixed, LaneWorkspace, OdeWorkspace, Rk4Stages, Solver,
    StepControl, SystemOver, VotingAdaptive, Workspace,
};
use crate::system::{LanedOdeSystem, OdeSystem};
use crate::trajectory::Trajectory;
use std::fmt;

/// A lane-width validation error: the requested SIMD-style lane width is
/// not one the engine (or the selected step-control policy) can run.
///
/// Produced by `ark-sim`'s width checks (`Ensemble::try_with_lanes`, the
/// `ARK_LANES` environment override) and by scalar-only step-control
/// policies driven at `WIDTH > 1`; convertible into [`SolveError`] via
/// `From` so solver entry points can propagate it with `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneError {
    /// The width is not in the engine's supported set (the laned
    /// interpreter is only monomorphized for `supported`).
    UnsupportedWidth {
        /// The rejected lane width.
        requested: usize,
        /// The authoritative supported set (owned by the caller — for the
        /// ensemble engine, `ark_sim::SUPPORTED_LANES`).
        supported: &'static [usize],
    },
    /// The step-control policy has no laned form but was driven at a lane
    /// width above 1 (the PI-adaptive controller is lockstep
    /// fixed-step-only; see `VotingAdaptive` for the laned alternative).
    ScalarOnlyPolicy {
        /// Name of the scalar-only policy.
        policy: &'static str,
        /// The lane width it was driven at.
        width: usize,
    },
}

impl fmt::Display for LaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaneError::UnsupportedWidth {
                requested,
                supported,
            } => write!(
                f,
                "unsupported lane width {requested}: the laned interpreter is \
                 compiled for widths {supported:?}"
            ),
            LaneError::ScalarOnlyPolicy { policy, width } => write!(
                f,
                "the {policy} has no laned form but was driven at lane width \
                 {width}; use VotingAdaptive to trade bit-identity for laned \
                 adaptive stepping"
            ),
        }
    }
}

impl std::error::Error for LaneError {}

/// An error produced during integration.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The state or derivative became non-finite at time `t`.
    NonFinite {
        /// Time at which the failure was detected.
        t: f64,
    },
    /// The adaptive controller reduced the step below its minimum at time `t`.
    StepSizeUnderflow {
        /// Time at which the step underflowed.
        t: f64,
    },
    /// Invalid solver configuration.
    BadConfig(String),
    /// A lane-width validation failure (see [`LaneError`]).
    UnsupportedLanes(LaneError),
    /// The damped-Newton iteration of an implicit stepper failed to
    /// converge (or its iteration matrix was singular) at time `t`, and the
    /// step policy had no way to shrink the step. Produced by
    /// [`TrBdf2`](crate::TrBdf2) under [`Fixed`] control; adaptive control
    /// retries with a smaller step instead.
    NewtonDivergence {
        /// Time of the failed step attempt.
        t: f64,
    },
    /// The solver's step budget (`max_steps` on [`Fixed`] /
    /// [`Adaptive`]) was exhausted before reaching `t1`.
    /// The adaptive controllers count step *attempts* (accepted +
    /// rejected), so a pathological system can neither spin the PI loop
    /// unbounded nor dodge the budget by rejecting forever.
    MaxStepsExceeded {
        /// Time reached when the budget ran out.
        t: f64,
        /// The configured budget.
        budget: u64,
    },
}

impl SolveError {
    /// A stable machine-readable name for this error's variant (without
    /// its payload): `"non_finite"`, `"step_size_underflow"`,
    /// `"bad_config"`, `"unsupported_lanes"`, `"newton_divergence"`, or
    /// `"max_steps_exceeded"`. Failure accounting (the `FailureLog`
    /// reducer in `ark-sim`) keys its per-kind counts on this.
    pub fn kind(&self) -> &'static str {
        match self {
            SolveError::NonFinite { .. } => "non_finite",
            SolveError::StepSizeUnderflow { .. } => "step_size_underflow",
            SolveError::BadConfig(_) => "bad_config",
            SolveError::UnsupportedLanes(_) => "unsupported_lanes",
            SolveError::NewtonDivergence { .. } => "newton_divergence",
            SolveError::MaxStepsExceeded { .. } => "max_steps_exceeded",
        }
    }

    /// The time at which the failure was detected, when the variant
    /// carries one (`BadConfig`/`UnsupportedLanes` are pre-flight checks
    /// and do not).
    pub fn time(&self) -> Option<f64> {
        match self {
            SolveError::NonFinite { t }
            | SolveError::StepSizeUnderflow { t }
            | SolveError::NewtonDivergence { t }
            | SolveError::MaxStepsExceeded { t, .. } => Some(*t),
            SolveError::BadConfig(_) | SolveError::UnsupportedLanes(_) => None,
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NonFinite { t } => write!(f, "non-finite state at t={t}"),
            SolveError::StepSizeUnderflow { t } => write!(f, "step size underflow at t={t}"),
            SolveError::BadConfig(m) => write!(f, "bad solver configuration: {m}"),
            SolveError::UnsupportedLanes(e) => write!(f, "bad solver configuration: {e}"),
            SolveError::NewtonDivergence { t } => {
                write!(f, "Newton iteration failed to converge at t={t}")
            }
            SolveError::MaxStepsExceeded { t, budget } => {
                write!(f, "step budget of {budget} exhausted at t={t}")
            }
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::UnsupportedLanes(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LaneError> for SolveError {
    fn from(e: LaneError) -> Self {
        SolveError::UnsupportedLanes(e)
    }
}

/// Shared wrapper: run `solver` with a [`Strided`] recorder, one lane.
fn record<V: Solver, E: Elem, S: SystemOver<E> + ?Sized>(
    solver: &V,
    sys: &S,
    t0: f64,
    y0: &[E],
    t1: f64,
    stride: usize,
    ws: &mut Workspace<E>,
) -> Result<Vec<Trajectory>, SolveError> {
    let mut rec = Strided::every(stride);
    solver.solve(sys, t0, y0, t1, &mut rec, ws)?;
    Ok(rec.into_trajectories())
}

/// Forward Euler with a fixed step. Mostly a baseline for convergence tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Euler {
    /// Step size.
    pub dt: f64,
}

impl Solver for Euler {
    fn solve<E: Elem, S: SystemOver<E> + ?Sized, O: crate::Observer<E>>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[E],
        t1: f64,
        obs: &mut O,
        ws: &mut Workspace<E>,
    ) -> Result<crate::SolveStats, SolveError> {
        Fixed::new(self.dt).drive(&EulerStages, sys, t0, y0, t1, obs, ws)
    }
}

impl Euler {
    /// Integrate from `t0` to `t1`, recording every `stride`-th step (the
    /// initial and final states are always recorded). Allocates work buffers
    /// internally; see [`Euler::integrate_with`] for the reusable-buffer
    /// form.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadConfig`] for a non-positive step or empty interval,
    /// [`SolveError::NonFinite`] if the state blows up.
    pub fn integrate(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
        stride: usize,
    ) -> Result<Trajectory, SolveError> {
        self.integrate_with(sys, t0, y0, t1, stride, &mut OdeWorkspace::new(y0.len()))
    }

    /// Like [`Euler::integrate`], but stepping through the caller-provided
    /// workspace: the hot loop performs no allocations beyond amortized
    /// trajectory growth.
    ///
    /// # Errors
    ///
    /// Same as [`Euler::integrate`].
    pub fn integrate_with(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
        stride: usize,
        ws: &mut OdeWorkspace,
    ) -> Result<Trajectory, SolveError> {
        Ok(record(self, sys, t0, y0, t1, stride, ws)?
            .pop()
            .expect("one lane"))
    }

    /// Lane-batched [`Euler::integrate_with`]: steps `L` independent
    /// instances in lockstep, producing one trajectory per lane. Each
    /// lane's trajectory (samples *and* stats) is bit-identical to a scalar
    /// [`Euler::integrate_with`] of that lane alone — the update arithmetic
    /// is elementwise and ordered exactly like the scalar loop.
    ///
    /// `y0` is struct-of-arrays: `y0[i][l]` is state component `i` of lane
    /// `l`.
    ///
    /// # Errors
    ///
    /// As [`Euler::integrate_with`]; when lanes fail, the *lowest* failed
    /// lane's error is reported (lanes keep stepping after another lane
    /// fails, so the reported lane and time match the scalar path).
    pub fn integrate_lanes_with<const L: usize>(
        &self,
        sys: &impl LanedOdeSystem<L>,
        t0: f64,
        y0: &[[f64; L]],
        t1: f64,
        stride: usize,
        ws: &mut LaneWorkspace<L>,
    ) -> Result<Vec<Trajectory>, SolveError> {
        record(self, sys, t0, y0, t1, stride, ws)
    }
}

/// Classical fourth-order Runge–Kutta with a fixed step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rk4 {
    /// Step size.
    pub dt: f64,
}

impl Solver for Rk4 {
    fn solve<E: Elem, S: SystemOver<E> + ?Sized, O: crate::Observer<E>>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[E],
        t1: f64,
        obs: &mut O,
        ws: &mut Workspace<E>,
    ) -> Result<crate::SolveStats, SolveError> {
        Fixed::new(self.dt).drive(&Rk4Stages, sys, t0, y0, t1, obs, ws)
    }
}

impl Rk4 {
    /// Integrate from `t0` to `t1`, recording every `stride`-th step (the
    /// initial and final states are always recorded). Allocates work buffers
    /// internally; see [`Rk4::integrate_with`] for the reusable-buffer form.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadConfig`] for a non-positive step or empty interval,
    /// [`SolveError::NonFinite`] if the state blows up.
    pub fn integrate(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
        stride: usize,
    ) -> Result<Trajectory, SolveError> {
        self.integrate_with(sys, t0, y0, t1, stride, &mut OdeWorkspace::new(y0.len()))
    }

    /// Like [`Rk4::integrate`], but stepping through the caller-provided
    /// workspace: the hot loop performs no allocations beyond amortized
    /// trajectory growth.
    ///
    /// # Errors
    ///
    /// Same as [`Rk4::integrate`].
    pub fn integrate_with(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
        stride: usize,
        ws: &mut OdeWorkspace,
    ) -> Result<Trajectory, SolveError> {
        Ok(record(self, sys, t0, y0, t1, stride, ws)?
            .pop()
            .expect("one lane"))
    }

    /// Lane-batched [`Rk4::integrate_with`]: steps `L` independent
    /// instances in lockstep, producing one trajectory per lane. Each
    /// lane's trajectory (samples *and* stats) is bit-identical to a scalar
    /// [`Rk4::integrate_with`] of that lane alone: every stage update is
    /// elementwise with the same operation order as the scalar loop, and
    /// fixed-step lockstep means all lanes share the exact `t` grid (which
    /// also keeps the laned interpreter's time-prologue cache shared).
    ///
    /// This is the workhorse of the `ark-sim` laned ensembles. The
    /// PI-adaptive [`DormandPrince`] deliberately has **no** laned form —
    /// see its type docs; [`VotingDormandPrince`] is the opt-in laned
    /// adaptive mode.
    ///
    /// `y0` is struct-of-arrays: `y0[i][l]` is state component `i` of lane
    /// `l`.
    ///
    /// # Errors
    ///
    /// As [`Rk4::integrate_with`]; when lanes fail, the *lowest* failed
    /// lane's error is reported (lanes keep stepping after another lane
    /// fails, so the reported lane and time match the scalar path).
    pub fn integrate_lanes_with<const L: usize>(
        &self,
        sys: &impl LanedOdeSystem<L>,
        t0: f64,
        y0: &[[f64; L]],
        t1: f64,
        stride: usize,
        ws: &mut LaneWorkspace<L>,
    ) -> Result<Vec<Trajectory>, SolveError> {
        record(self, sys, t0, y0, t1, stride, ws)
    }
}

/// Adaptive Dormand–Prince 5(4) embedded Runge–Kutta pair.
///
/// # No laned form by default (lockstep fixed-step-only policy)
///
/// The default lane-batched ensemble path deliberately does **not** extend
/// to this solver. Lockstep lanes must share one step sequence, but the PI
/// controller derives each step from the error norm of *one* instance:
/// any shared policy (min/vote across lanes) changes the accepted-step grid
/// and therefore breaks the bit-identity guarantee against the scalar
/// path, while per-lane step sequences are no longer lanes at all.
/// Adaptive ensembles in `ark-sim` fall back to the scalar path per
/// instance ([`Solver::supports_lanes`] returns `false` here).
///
/// Workloads willing to trade bit-identity for throughput can opt into
/// step-size **voting** — [`DormandPrince::voting`] /
/// [`VotingDormandPrince`] — which lanes the adaptive solver with a shared
/// min-over-lanes step and per-lane early-exit masks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DormandPrince {
    /// Relative error tolerance.
    pub rtol: f64,
    /// Absolute error tolerance.
    pub atol: f64,
    /// Initial step (guessed from the interval when `None`).
    pub h0: Option<f64>,
    /// Smallest step before declaring failure.
    pub h_min: f64,
    /// Largest allowed step.
    pub h_max: f64,
    /// Hard budget on step attempts (accepted + rejected); `0` means
    /// unlimited. See [`Adaptive`]'s `max_steps`.
    pub max_steps: u64,
}

impl Default for DormandPrince {
    fn default() -> Self {
        DormandPrince {
            rtol: 1e-6,
            atol: 1e-9,
            h0: None,
            h_min: 1e-14,
            h_max: f64::INFINITY,
            max_steps: 0,
        }
    }
}

impl Solver for DormandPrince {
    fn solve<E: Elem, S: SystemOver<E> + ?Sized, O: crate::Observer<E>>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[E],
        t1: f64,
        obs: &mut O,
        ws: &mut Workspace<E>,
    ) -> Result<crate::SolveStats, SolveError> {
        self.control().drive(&Dp45Stages, sys, t0, y0, t1, obs, ws)
    }

    fn supports_lanes(&self) -> bool {
        false
    }
}

impl DormandPrince {
    /// Construct with tolerances and defaults for the step bounds.
    pub fn new(rtol: f64, atol: f64) -> Self {
        DormandPrince {
            rtol,
            atol,
            ..Default::default()
        }
    }

    /// This configuration as an [`Adaptive`] step-control policy.
    pub fn control(&self) -> Adaptive {
        Adaptive {
            rtol: self.rtol,
            atol: self.atol,
            h0: self.h0,
            h_min: self.h_min,
            h_max: self.h_max,
            max_steps: self.max_steps,
        }
    }

    /// The step-size-voting form of this solver: lane-batched adaptive
    /// stepping (see [`VotingDormandPrince`]).
    pub fn voting(self) -> VotingDormandPrince {
        VotingDormandPrince(self)
    }

    /// Integrate from `t0` to `t1`, recording every accepted step. Allocates
    /// work buffers internally; see [`DormandPrince::integrate_with`] for
    /// the reusable-buffer form.
    ///
    /// Samples land on the accepted (possibly large) steps; if you need to
    /// interpolate the result densely, bound `h_max` so linear interpolation
    /// between samples stays accurate.
    ///
    /// The returned trajectory's [`SolveStats`](crate::SolveStats) report
    /// accepted *and* rejected step counts — rejections are where the PI
    /// controller earned its keep.
    ///
    /// # Errors
    ///
    /// [`SolveError::StepSizeUnderflow`] when the error controller cannot
    /// meet the tolerance, [`SolveError::NonFinite`] on blow-up, and
    /// [`SolveError::BadConfig`] for invalid configuration.
    pub fn integrate(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
    ) -> Result<Trajectory, SolveError> {
        self.integrate_with(sys, t0, y0, t1, &mut OdeWorkspace::new(y0.len()))
    }

    /// Like [`DormandPrince::integrate`], but stepping through the
    /// caller-provided workspace: the hot loop performs no allocations
    /// beyond amortized trajectory growth.
    ///
    /// # Errors
    ///
    /// Same as [`DormandPrince::integrate`].
    pub fn integrate_with(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
        ws: &mut OdeWorkspace,
    ) -> Result<Trajectory, SolveError> {
        Ok(record(self, sys, t0, y0, t1, 1, ws)?
            .pop()
            .expect("one lane"))
    }
}

/// The lane-batched adaptive solver: [`DormandPrince`] stages under
/// [`VotingAdaptive`] step control.
///
/// All lanes share one accepted-step grid chosen by the worst live lane's
/// error norm (equivalently: each lane votes for a step, the minimum
/// wins), and a lane whose state leaves ℝ is masked out of the vote and
/// the recording while the others continue. Results depend only on the
/// seeds **and the lane width** — never on the worker count — which is the
/// documented trade: unlike every default path, different lane widths
/// produce different (all individually valid) step grids. At width 1 this
/// solver is bit-identical to [`DormandPrince`].
///
/// # Examples
///
/// ```
/// use ark_ode::{DormandPrince, FnLanedSystem, LaneWorkspace, Solver, Strided};
///
/// // Four decays with different rates, one shared adaptive step sequence.
/// let sys = FnLanedSystem::new(1, |_t, y: &[[f64; 4]], d: &mut [[f64; 4]]| {
///     for l in 0..4 {
///         d[0][l] = -(1.0 + l as f64) * y[0][l];
///     }
/// });
/// let solver = DormandPrince::new(1e-9, 1e-12).voting();
/// let mut rec = Strided::every(1);
/// solver.solve(&sys, 0.0, &[[1.0; 4]], 1.0, &mut rec, &mut LaneWorkspace::new(1))?;
/// for (l, tr) in rec.into_trajectories().iter().enumerate() {
///     let expect = (-(1.0 + l as f64)).exp();
///     assert!((tr.last().unwrap().1[0] - expect).abs() < 1e-7, "lane {l}");
/// }
/// # Ok::<(), ark_ode::SolveError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VotingDormandPrince(pub DormandPrince);

impl Solver for VotingDormandPrince {
    fn solve<E: Elem, S: SystemOver<E> + ?Sized, O: crate::Observer<E>>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[E],
        t1: f64,
        obs: &mut O,
        ws: &mut Workspace<E>,
    ) -> Result<crate::SolveStats, SolveError> {
        VotingAdaptive(self.0.control()).drive(&Dp45Stages, sys, t0, y0, t1, obs, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::FnSystem;
    use crate::LaneWorkspace;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0])
    }

    #[test]
    fn euler_decay_first_order() {
        let sys = decay();
        let tr = Euler { dt: 1e-3 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 100)
            .unwrap();
        let (_, yf) = tr.last().unwrap();
        assert!((yf[0] - (-1.0f64).exp()).abs() < 1e-3);
    }

    #[test]
    fn euler_first_order_convergence() {
        // Halving dt halves the global error on y' = -y.
        let sys = decay();
        let err = |dt: f64| {
            let tr = Euler { dt }
                .integrate(&sys, 0.0, &[1.0], 1.0, usize::MAX)
                .unwrap();
            (tr.last().unwrap().1[0] - (-1.0f64).exp()).abs()
        };
        let ratio = err(0.01) / err(0.005);
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn rk4_decay_high_accuracy() {
        let sys = decay();
        let tr = Rk4 { dt: 1e-2 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 10)
            .unwrap();
        let (_, yf) = tr.last().unwrap();
        assert!((yf[0] - (-1.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn rk4_fourth_order_convergence() {
        let sys = decay();
        let err = |dt: f64| {
            let tr = Rk4 { dt }
                .integrate(&sys, 0.0, &[1.0], 1.0, usize::MAX)
                .unwrap();
            (tr.last().unwrap().1[0] - (-1.0f64).exp()).abs()
        };
        let e1 = err(0.1);
        let e2 = err(0.05);
        let ratio = e1 / e2;
        // Fourth order: halving dt divides error by ~16.
        assert!(ratio > 12.0 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn rk4_harmonic_oscillator_conserves_energy() {
        let sys = FnSystem::new(2, |_t, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let tr = Rk4 { dt: 1e-3 }
            .integrate(&sys, 0.0, &[1.0, 0.0], 2.0 * std::f64::consts::PI, 100)
            .unwrap();
        let (_, yf) = tr.last().unwrap();
        // One full period returns to the initial condition.
        assert!((yf[0] - 1.0).abs() < 1e-8);
        assert!(yf[1].abs() < 1e-8);
        let energy = yf[0] * yf[0] + yf[1] * yf[1];
        assert!((energy - 1.0).abs() < 1e-10);
    }

    #[test]
    fn dp45_decay_meets_tolerance() {
        let sys = decay();
        let tr = DormandPrince::new(1e-9, 1e-12)
            .integrate(&sys, 0.0, &[1.0], 1.0)
            .unwrap();
        let (_, yf) = tr.last().unwrap();
        assert!((yf[0] - (-1.0f64).exp()).abs() < 1e-8);
    }

    #[test]
    fn dp45_forced_system() {
        // dy/dt = cos(t), y(0)=0 => y(t)=sin(t).
        let sys = FnSystem::new(1, |t: f64, _y: &[f64], d: &mut [f64]| d[0] = t.cos());
        // Bound the step so linear interpolation between accepted samples is
        // accurate at the probe points.
        let solver = DormandPrince {
            h_max: 1e-2,
            ..DormandPrince::new(1e-8, 1e-11)
        };
        let tr = solver.integrate(&sys, 0.0, &[0.0], 3.0).unwrap();
        for t in [0.5, 1.0, 2.0, 3.0] {
            assert!((tr.value_at(t, 0) - t.sin()).abs() < 1e-5, "t={t}");
        }
    }

    #[test]
    fn dp45_adapts_step_count() {
        // A stiff-ish decay needs more steps at tight tolerance.
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -50.0 * y[0]);
        let loose = DormandPrince::new(1e-3, 1e-6)
            .integrate(&sys, 0.0, &[1.0], 1.0)
            .unwrap();
        let tight = DormandPrince::new(1e-10, 1e-13)
            .integrate(&sys, 0.0, &[1.0], 1.0)
            .unwrap();
        assert!(tight.len() > loose.len());
    }

    #[test]
    fn dp45_reports_rejected_steps() {
        // Force the controller to overreach: a stiff decay attacked with a
        // huge initial step must reject at least once before settling.
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -50.0 * y[0]);
        let solver = DormandPrince {
            h0: Some(0.5),
            ..DormandPrince::new(1e-8, 1e-11)
        };
        let tr = solver.integrate(&sys, 0.0, &[1.0], 1.0).unwrap();
        let stats = tr.stats();
        assert!(stats.rejected >= 1, "stats {stats:?}");
        assert_eq!(stats.accepted, tr.len() - 1);
        // 6 fresh stages per attempt (FSAL) plus the priming evaluation.
        assert_eq!(
            stats.rhs_evals,
            1 + 6 * (stats.accepted + stats.rejected),
            "stats {stats:?}"
        );
    }

    #[test]
    fn fixed_step_stats_count_steps() {
        let sys = decay();
        let tr = Rk4 { dt: 0.1 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 1)
            .unwrap();
        let stats = tr.stats();
        assert_eq!(stats.accepted, 10);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.rhs_evals, 40);
        let tr = Euler { dt: 0.1 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 1)
            .unwrap();
        assert_eq!(tr.stats().rhs_evals, 10);
    }

    #[test]
    fn workspace_is_reusable_across_dims_and_solvers() {
        let mut ws = OdeWorkspace::new(1);
        let sys1 = decay();
        let a = Rk4 { dt: 1e-2 }
            .integrate_with(&sys1, 0.0, &[1.0], 1.0, 10, &mut ws)
            .unwrap();
        // Same workspace, larger system.
        let sys2 = FnSystem::new(2, |_t, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let b = DormandPrince::default()
            .integrate_with(&sys2, 0.0, &[1.0, 0.0], 1.0, &mut ws)
            .unwrap();
        // And back down again, matching the fresh-buffer path exactly.
        let c = Rk4 { dt: 1e-2 }
            .integrate_with(&sys1, 0.0, &[1.0], 1.0, 10, &mut ws)
            .unwrap();
        assert_eq!(a, c);
        assert_eq!(b.dim(), 2);
    }

    #[test]
    fn fixed_step_hits_end_exactly() {
        let sys = decay();
        // dt that does not divide the interval.
        let tr = Rk4 { dt: 0.3 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 1)
            .unwrap();
        assert!((tr.last().unwrap().0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_config_errors() {
        let sys = decay();
        assert!(matches!(
            Rk4 { dt: 0.0 }.integrate(&sys, 0.0, &[1.0], 1.0, 1),
            Err(SolveError::BadConfig(_))
        ));
        assert!(matches!(
            Rk4 { dt: 0.1 }.integrate(&sys, 1.0, &[1.0], 0.0, 1),
            Err(SolveError::BadConfig(_))
        ));
        assert!(matches!(
            Rk4 { dt: 0.1 }.integrate(&sys, 0.0, &[1.0, 2.0], 1.0, 1),
            Err(SolveError::BadConfig(_))
        ));
        assert!(matches!(
            DormandPrince::new(-1.0, 0.0).integrate(&sys, 0.0, &[1.0], 1.0),
            Err(SolveError::BadConfig(_))
        ));
    }

    #[test]
    fn nonfinite_detected() {
        // dy/dt = y^2 blows up at t=1 for y0=1.
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = y[0] * y[0]);
        let res = Rk4 { dt: 1e-3 }.integrate(&sys, 0.0, &[1.0], 2.0, 1);
        assert!(matches!(res, Err(SolveError::NonFinite { .. })));
    }

    #[test]
    fn fixed_step_budget_is_preflight() {
        use crate::observe::FinalState;
        use crate::solver::{Method, OdeWorkspace, Rk4Stages};
        let sys = decay();
        // 1000 planned steps against a budget of 10: fail before stepping.
        let control = Fixed {
            dt: 1e-3,
            max_steps: 10,
        };
        let solver = Method {
            stepper: Rk4Stages,
            control,
        };
        let mut obs = FinalState::new();
        let res = solver.solve(&sys, 0.0, &[1.0], 1.0, &mut obs, &mut OdeWorkspace::new(1));
        assert_eq!(
            res,
            Err(SolveError::MaxStepsExceeded { t: 0.0, budget: 10 })
        );
        // A sufficient budget is untouched by the check.
        let solver = Method {
            stepper: Rk4Stages,
            control: Fixed {
                dt: 1e-3,
                max_steps: 1000,
            },
        };
        let stats = solver
            .solve(&sys, 0.0, &[1.0], 1.0, &mut obs, &mut OdeWorkspace::new(1))
            .unwrap();
        assert_eq!(stats.accepted, 1000);
    }

    #[test]
    fn adaptive_step_budget_counts_attempts() {
        let sys = decay();
        let tight = DormandPrince {
            max_steps: 3,
            ..DormandPrince::new(1e-12, 1e-14)
        };
        let res = tight.integrate(&sys, 0.0, &[1.0], 1.0);
        let Err(SolveError::MaxStepsExceeded { t, budget: 3 }) = res else {
            panic!("expected MaxStepsExceeded, got {res:?}");
        };
        assert!(t < 1.0);
        // The same run with an ample budget is bit-identical to the
        // unbudgeted solver: the budget check reads counters only.
        let ample = DormandPrince {
            max_steps: 100_000,
            ..DormandPrince::new(1e-12, 1e-14)
        };
        let a = ample.integrate(&sys, 0.0, &[1.0], 1.0).unwrap();
        let b = DormandPrince::new(1e-12, 1e-14)
            .integrate(&sys, 0.0, &[1.0], 1.0)
            .unwrap();
        assert_eq!(a.last(), b.last());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn error_kinds_are_stable_names() {
        assert_eq!(SolveError::NonFinite { t: 0.0 }.kind(), "non_finite");
        assert_eq!(
            SolveError::MaxStepsExceeded { t: 0.5, budget: 9 }.kind(),
            "max_steps_exceeded"
        );
        assert_eq!(SolveError::BadConfig("x".into()).kind(), "bad_config");
        assert_eq!(SolveError::NonFinite { t: 2.0 }.time(), Some(2.0));
        assert_eq!(SolveError::BadConfig("x".into()).time(), None);
    }

    /// A laned wrapper around independent per-lane scalar closures.
    #[allow(clippy::type_complexity)]
    fn laned_decay<const L: usize>(
        rates: [f64; L],
    ) -> crate::system::FnLanedSystem<L, impl Fn(f64, &[[f64; L]], &mut [[f64; L]])> {
        crate::system::FnLanedSystem::new(1, move |_t, y: &[[f64; L]], d: &mut [[f64; L]]| {
            for l in 0..L {
                d[0][l] = -rates[l] * y[0][l];
            }
        })
    }

    #[test]
    fn laned_rk4_matches_scalar_bit_for_bit() {
        const L: usize = 4;
        let rates = [0.5, 1.0, 2.0, 3.25];
        let y0s = [1.0, -2.0, 0.125, 7.5];
        let laned = Rk4 { dt: 1e-2 }
            .integrate_lanes_with(
                &laned_decay(rates),
                0.0,
                &[y0s],
                1.0,
                7,
                &mut LaneWorkspace::new(1),
            )
            .unwrap();
        for l in 0..L {
            let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| {
                d[0] = -rates[l] * y[0]
            });
            let scalar = Rk4 { dt: 1e-2 }
                .integrate(&sys, 0.0, &[y0s[l]], 1.0, 7)
                .unwrap();
            assert_eq!(scalar, laned[l], "lane {l}");
        }
    }

    #[test]
    fn laned_euler_matches_scalar_bit_for_bit() {
        const L: usize = 2;
        let rates = [0.5, 4.0];
        let laned = Euler { dt: 1e-2 }
            .integrate_lanes_with(
                &laned_decay(rates),
                0.0,
                &[[1.0; L]],
                1.0,
                3,
                &mut LaneWorkspace::new(1),
            )
            .unwrap();
        for l in 0..L {
            let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| {
                d[0] = -rates[l] * y[0]
            });
            let scalar = Euler { dt: 1e-2 }
                .integrate(&sys, 0.0, &[1.0], 1.0, 3)
                .unwrap();
            assert_eq!(scalar, laned[l], "lane {l}");
        }
    }

    #[test]
    fn laned_failure_reports_lowest_lane_at_scalar_time() {
        // Lane 1 blows up (dy/dt = y², y0 = 1 → blow-up at t = 1); lane 0 is
        // a benign decay. The group reports lane 1's NonFinite at the same t
        // a scalar run of lane 1 alone detects it.
        const L: usize = 2;
        let sys = crate::system::FnLanedSystem::new(1, |_t, y: &[[f64; L]], d: &mut [[f64; L]]| {
            d[0][0] = -y[0][0];
            d[0][1] = y[0][1] * y[0][1];
        });
        let got = Rk4 { dt: 1e-3 }
            .integrate_lanes_with(&sys, 0.0, &[[1.0, 1.0]], 2.0, 1, &mut LaneWorkspace::new(1))
            .unwrap_err();
        let scalar_sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = y[0] * y[0]);
        let want = Rk4 { dt: 1e-3 }
            .integrate(&scalar_sys, 0.0, &[1.0], 2.0, 1)
            .unwrap_err();
        assert_eq!(got, want);
    }

    #[test]
    fn laned_workspace_is_reusable_across_dims() {
        let mut ws = LaneWorkspace::<2>::new(1);
        let a = Rk4 { dt: 1e-2 }
            .integrate_lanes_with(
                &laned_decay([1.0, 2.0]),
                0.0,
                &[[1.0, 1.0]],
                1.0,
                5,
                &mut ws,
            )
            .unwrap();
        // Same workspace, larger system (two state components).
        let sys2 =
            crate::system::FnLanedSystem::new(2, |_t, y: &[[f64; 2]], d: &mut [[f64; 2]]| {
                for l in 0..2 {
                    d[0][l] = y[1][l];
                    d[1][l] = -y[0][l];
                }
            });
        let b = Rk4 { dt: 1e-2 }
            .integrate_lanes_with(&sys2, 0.0, &[[1.0, 1.0], [0.0, 0.0]], 1.0, 5, &mut ws)
            .unwrap();
        // And back down, matching the fresh-buffer path exactly.
        let c = Rk4 { dt: 1e-2 }
            .integrate_lanes_with(
                &laned_decay([1.0, 2.0]),
                0.0,
                &[[1.0, 1.0]],
                1.0,
                5,
                &mut LaneWorkspace::new(1),
            )
            .unwrap();
        assert_eq!(a, c);
        assert_eq!(b[0].dim(), 2);
    }

    #[test]
    fn stride_reduces_samples() {
        let sys = decay();
        let dense = Rk4 { dt: 1e-3 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 1)
            .unwrap();
        let sparse = Rk4 { dt: 1e-3 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 100)
            .unwrap();
        assert!(dense.len() > 900);
        assert!(sparse.len() < 20);
        // Endpoint recorded in both.
        assert_eq!(dense.last().unwrap().0, sparse.last().unwrap().0);
    }

    #[test]
    fn voting_width_one_is_bit_identical_to_scalar_dp() {
        // At WIDTH == 1 the vote degenerates to the PI controller exactly.
        let sys = FnSystem::new(1, |t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = -3.0 * y[0] + (5.0 * t).sin()
        });
        let dp = DormandPrince::new(1e-8, 1e-11);
        let scalar = dp.integrate(&sys, 0.0, &[1.0], 2.0).unwrap();
        let mut rec = Strided::every(1);
        dp.voting()
            .solve(&sys, 0.0, &[1.0], 2.0, &mut rec, &mut OdeWorkspace::new(1))
            .unwrap();
        assert_eq!(scalar, rec.into_trajectory());
    }

    #[test]
    fn voting_masks_a_poisoned_lane_but_keeps_stepping() {
        // Lane 1's derivative turns NaN past t = 0.5; lane 0 is a benign
        // decay. The poisoned lane is masked out of the vote (early exit)
        // so lane 0 keeps stepping all the way to t1, and the group then
        // reports lane 1's failure — the fixed-step laned error semantics.
        const L: usize = 2;
        let sys = crate::system::FnLanedSystem::new(1, |t, y: &[[f64; L]], d: &mut [[f64; L]]| {
            d[0][0] = -y[0][0];
            d[0][1] = if t > 0.5 { f64::NAN } else { -y[0][1] };
        });
        let solver = DormandPrince::new(1e-8, 1e-11).voting();
        let mut t_seen = 0.0f64;
        let mut probe = crate::Probe::new(|t: f64, _y: &[[f64; L]], _info, _alive: &[bool]| {
            t_seen = t;
            true
        });
        let err = solver
            .solve(
                &sys,
                0.0,
                &[[1.0, 1.0]],
                2.0,
                &mut probe,
                &mut LaneWorkspace::new(1),
            )
            .unwrap_err();
        assert!(matches!(err, SolveError::NonFinite { .. }), "{err}");
        // The surviving lane carried the run to the end of the interval.
        assert!(t_seen >= 2.0, "run stopped early at t={t_seen}");
    }

    #[test]
    fn voting_underflows_like_scalar_on_a_finite_blowup() {
        // dy/dt = y² keeps its error estimate finite while diverging, so
        // the vote shrinks the shared step into underflow — the same
        // failure mode the scalar controller hits.
        const L: usize = 2;
        let sys = crate::system::FnLanedSystem::new(1, |_t, y: &[[f64; L]], d: &mut [[f64; L]]| {
            d[0][0] = -y[0][0];
            d[0][1] = y[0][1] * y[0][1];
        });
        let solver = DormandPrince::new(1e-8, 1e-11).voting();
        let mut rec = Strided::every(1);
        let err = solver
            .solve(
                &sys,
                0.0,
                &[[1.0, 1.0]],
                2.0,
                &mut rec,
                &mut LaneWorkspace::new(1),
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                SolveError::StepSizeUnderflow { .. } | SolveError::NonFinite { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn plain_adaptive_rejects_lanes() {
        const L: usize = 2;
        let sys = laned_decay([1.0, 2.0]);
        let mut rec = Strided::every(1);
        let err = DormandPrince::default()
            .solve(
                &sys,
                0.0,
                &[[1.0; L]],
                1.0,
                &mut rec,
                &mut LaneWorkspace::new(1),
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                SolveError::UnsupportedLanes(LaneError::ScalarOnlyPolicy { width: L, .. })
            ),
            "{err}"
        );
        assert!(!DormandPrince::default().supports_lanes());
        assert!(DormandPrince::default().voting().supports_lanes());
        assert!(Rk4 { dt: 1.0 }.supports_lanes());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::system::{FnSystem, LinearSystem};
    use proptest::prelude::*;

    proptest! {
        /// Constant derivative integrates to a straight line under all solvers.
        #[test]
        fn constant_rhs_linear(c in -5.0..5.0f64, t1 in 0.1..3.0f64) {
            let sys = FnSystem::new(1, move |_t, _y: &[f64], d: &mut [f64]| d[0] = c);
            let rk = Rk4 { dt: 0.01 }.integrate(&sys, 0.0, &[0.0], t1, 1).unwrap();
            prop_assert!((rk.last().unwrap().1[0] - c * t1).abs() < 1e-9);
            let dp = DormandPrince::default().integrate(&sys, 0.0, &[0.0], t1).unwrap();
            prop_assert!((dp.last().unwrap().1[0] - c * t1).abs() < 1e-6);
        }

        /// Linear decay stays positive and monotone under RK4.
        #[test]
        fn decay_monotone(y0 in 0.1..10.0f64, rate in 0.1..5.0f64) {
            let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| d[0] = -rate * y[0]);
            let tr = Rk4 { dt: 1e-3 }.integrate(&sys, 0.0, &[y0], 1.0, 10).unwrap();
            let mut prev = f64::INFINITY;
            for (_, s) in tr.iter() {
                prop_assert!(s[0] > 0.0);
                prop_assert!(s[0] <= prev + 1e-12);
                prev = s[0];
            }
        }

        /// RK4 and Dormand–Prince agree on a smooth nonlinear system.
        #[test]
        fn solvers_agree(a in 0.5..2.0f64) {
            let sys = FnSystem::new(1, move |t: f64, y: &[f64], d: &mut [f64]| {
                d[0] = -a * y[0] + (3.0 * t).sin()
            });
            let rk = Rk4 { dt: 1e-3 }.integrate(&sys, 0.0, &[1.0], 2.0, 1).unwrap();
            let solver = DormandPrince { h_max: 1e-2, ..DormandPrince::new(1e-9, 1e-12) };
            let dp = solver.integrate(&sys, 0.0, &[1.0], 2.0).unwrap();
            // Endpoint: both solvers land exactly on t=2, so only solver
            // error shows up.
            let (r_end, d_end) = (rk.last().unwrap().1[0], dp.last().unwrap().1[0]);
            prop_assert!((r_end - d_end).abs() < 1e-8, "end rk={} dp={}", r_end, d_end);
            // Interior points additionally carry the linear-interpolation
            // error of the adaptive trace (O(h_max^2) ≈ 1e-4 worst case).
            for t in [0.5, 1.0, 1.5] {
                let (r, d) = (rk.value_at(t, 0), dp.value_at(t, 0));
                prop_assert!((r - d).abs() < 1e-4, "t={} rk={} dp={}", t, r, d);
            }
        }

        /// Lane-batched RK4/Euler over random linear-decay lanes is
        /// bit-identical to integrating each lane through the scalar path,
        /// for awkward strides and intervals.
        #[test]
        fn laned_matches_scalar_on_random_decays(
            rates in proptest::collection::vec(0.05..4.0f64, 4),
            y0 in proptest::collection::vec(-2.0..2.0f64, 4),
            t1 in 0.3..1.5f64,
            stride in 1usize..9,
        ) {
            const L: usize = 4;
            let rs: [f64; L] = [rates[0], rates[1], rates[2], rates[3]];
            let sys = crate::system::FnLanedSystem::new(1, move |_t, y: &[[f64; L]], d: &mut [[f64; L]]| {
                for l in 0..L {
                    d[0][l] = -rs[l] * y[0][l] + (2.0 * y[0][l]).sin() * 0.1;
                }
            });
            let y0s = [[y0[0], y0[1], y0[2], y0[3]]];
            for dt in [0.05, 0.013] {
                let laned = Rk4 { dt }
                    .integrate_lanes_with(&sys, 0.0, &y0s, t1, stride, &mut LaneWorkspace::new(1))
                    .unwrap();
                let laned_e = Euler { dt }
                    .integrate_lanes_with(&sys, 0.0, &y0s, t1, stride, &mut LaneWorkspace::new(1))
                    .unwrap();
                for l in 0..L {
                    let scalar_sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| {
                        d[0] = -rs[l] * y[0] + (2.0 * y[0]).sin() * 0.1;
                    });
                    let rk = Rk4 { dt }.integrate(&scalar_sys, 0.0, &[y0[l]], t1, stride).unwrap();
                    prop_assert_eq!(&rk, &laned[l]);
                    let eu = Euler { dt }.integrate(&scalar_sys, 0.0, &[y0[l]], t1, stride).unwrap();
                    prop_assert_eq!(&eu, &laned_e[l]);
                }
            }
        }

        /// The in-place (`integrate_with`) API is bit-identical to the
        /// legacy allocating API on random linear systems, for every solver
        /// — including when the workspace is dirty from a previous run.
        #[test]
        fn inplace_matches_allocating(
            a in proptest::collection::vec(-2.0..2.0f64, 9),
            y0 in proptest::collection::vec(-1.0..1.0f64, 3),
            f in -1.0..1.0f64,
        ) {
            let sys = LinearSystem::new(3, a, move |t: f64, b: &mut [f64]| {
                b[0] = f * t.sin();
                b[1] = 0.0;
                b[2] = -f;
            });
            let mut ws = OdeWorkspace::new(1); // deliberately undersized
            for dt in [0.05, 0.01] {
                let legacy = Euler { dt }.integrate(&sys, 0.0, &y0, 1.0, 3);
                let inplace = Euler { dt }.integrate_with(&sys, 0.0, &y0, 1.0, 3, &mut ws);
                prop_assert_eq!(legacy, inplace);
                let legacy = Rk4 { dt }.integrate(&sys, 0.0, &y0, 1.0, 3);
                let inplace = Rk4 { dt }.integrate_with(&sys, 0.0, &y0, 1.0, 3, &mut ws);
                prop_assert_eq!(legacy, inplace);
            }
            let dp = DormandPrince::new(1e-7, 1e-10);
            let legacy = dp.integrate(&sys, 0.0, &y0, 1.0);
            let inplace = dp.integrate_with(&sys, 0.0, &y0, 1.0, &mut ws);
            prop_assert_eq!(legacy, inplace);
        }

        /// Step-size voting at width 4: every lane's result meets the
        /// tolerance (the vote can only *tighten* any individual lane's
        /// grid), and the run is reproducible.
        #[test]
        fn voting_lanes_meet_tolerance(rates in proptest::collection::vec(0.2..4.0f64, 4)) {
            const L: usize = 4;
            let rs: [f64; L] = [rates[0], rates[1], rates[2], rates[3]];
            let sys = crate::system::FnLanedSystem::new(1, move |_t, y: &[[f64; L]], d: &mut [[f64; L]]| {
                for l in 0..L {
                    d[0][l] = -rs[l] * y[0][l];
                }
            });
            let solver = DormandPrince::new(1e-9, 1e-12).voting();
            let mut rec = Strided::every(1);
            solver.solve(&sys, 0.0, &[[1.0; L]], 1.0, &mut rec, &mut LaneWorkspace::new(1)).unwrap();
            let trs = rec.into_trajectories();
            let mut rec2 = Strided::every(1);
            solver.solve(&sys, 0.0, &[[1.0; L]], 1.0, &mut rec2, &mut LaneWorkspace::new(1)).unwrap();
            prop_assert_eq!(&trs, &rec2.into_trajectories());
            for l in 0..L {
                let expect = (-rs[l]).exp();
                let got = trs[l].last().unwrap().1[0];
                prop_assert!((got - expect).abs() < 1e-7, "lane {} got {} want {}", l, got, expect);
            }
        }

        /// TR-BDF2 converges at its design order on forced linear decay:
        /// halving the fixed step divides the endpoint error by ~4
        /// (observed order ≈ 2) across random rates and initial states.
        #[test]
        fn trbdf2_second_order_convergence(a in 0.3..2.0f64, y0 in -2.0..2.0f64) {
            // y' = -a·y + sin t has the exact solution
            //   y = (y0 + 1/(1+a²))·e^{-a t} + (a·sin t − cos t)/(1+a²).
            let sys = LinearSystem::new(1, vec![-a], |t: f64, b: &mut [f64]| b[0] = t.sin());
            let exact = |t: f64| {
                let d = 1.0 + a * a;
                (y0 + 1.0 / d) * (-a * t).exp() + (a * t.sin() - t.cos()) / d
            };
            let err = |dt: f64| {
                let tr = crate::TrBdf2::fixed(dt)
                    .integrate(&sys, 0.0, &[y0], 1.0, usize::MAX)
                    .unwrap();
                (tr.last().unwrap().1[0] - exact(1.0)).abs()
            };
            let ratio = err(0.1) / err(0.05);
            prop_assert!(ratio > 3.0 && ratio < 5.2, "observed ratio {} (order {})",
                ratio, ratio.log2());
        }

        /// A-stability smoke test: on y' = -λy with λ·h ≥ 100 — far outside
        /// every explicit stability region — TR-BDF2 decays monotonically
        /// toward zero while RK4 at the same coarse step blows up.
        #[test]
        fn trbdf2_stable_where_rk4_explodes(lam in 1e3..1e5f64) {
            let sys = LinearSystem::new(1, vec![-lam], |_t, b: &mut [f64]| b[0] = 0.0);
            let h = 0.1;
            let tr = crate::TrBdf2::fixed(h)
                .integrate(&sys, 0.0, &[1.0], 1.0, 1)
                .unwrap();
            let mut prev = 1.0;
            for (_, s) in tr.iter() {
                prop_assert!(s[0].abs() <= prev, "implicit iterates must contract");
                prev = s[0].abs();
            }
            prop_assert!(prev < 1e-6, "implicit end {prev}");
            // RK4's growth factor per step at λh ≥ 100 is ≈ (λh)⁴/24.
            match (Rk4 { dt: h }).integrate(&sys, 0.0, &[1.0], 1.0, 1) {
                Ok(tr) => {
                    let end = tr.last().unwrap().1[0].abs();
                    prop_assert!(end > 1e3, "rk4 should explode, got {end}");
                }
                Err(SolveError::NonFinite { .. }) => {} // overflowed
                Err(e) => prop_assert!(false, "unexpected rk4 failure {}", e),
            }
        }
    }
}
