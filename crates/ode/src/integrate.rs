//! Fixed-step and adaptive integrators.
//!
//! The Ark compiler produces an [`OdeSystem`]; these integrators run the
//! transient simulations behind every figure in the paper. Two families:
//!
//! * [`Rk4`] (and [`Euler`]) — fixed-step explicit methods, predictable cost,
//!   used for the TLN/OBC simulations where the step is set by the signal
//!   bandwidth;
//! * [`DormandPrince`] — adaptive 5(4) embedded Runge–Kutta with PI step
//!   control, used when stiffness varies across a run (CNN mismatch studies).
//!
//! Every solver has two entry points: `integrate`, which allocates its work
//! buffers internally (the historical API), and `integrate_with`, which
//! steps through a caller-provided [`OdeWorkspace`] so the hot loop performs
//! **zero per-step allocations** — the form the `ark-sim` ensemble engine
//! uses to reuse buffers across thousands of fabricated instances. Both
//! produce bit-identical trajectories.

use crate::system::OdeSystem;
use crate::trajectory::{SolveStats, Trajectory};
use std::fmt;

/// An error produced during integration.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The state or derivative became non-finite at time `t`.
    NonFinite {
        /// Time at which the failure was detected.
        t: f64,
    },
    /// The adaptive controller reduced the step below its minimum at time `t`.
    StepSizeUnderflow {
        /// Time at which the step underflowed.
        t: f64,
    },
    /// Invalid solver configuration.
    BadConfig(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NonFinite { t } => write!(f, "non-finite state at t={t}"),
            SolveError::StepSizeUnderflow { t } => write!(f, "step size underflow at t={t}"),
            SolveError::BadConfig(m) => write!(f, "bad solver configuration: {m}"),
        }
    }
}

impl std::error::Error for SolveError {}

fn check_finite(t: f64, y: &[f64]) -> Result<(), SolveError> {
    if y.iter().all(|x| x.is_finite()) {
        Ok(())
    } else {
        Err(SolveError::NonFinite { t })
    }
}

/// Reusable work buffers for the integrators: the current state, a stage
/// scratch vector, and up to seven stage-derivative vectors (the
/// Dormand–Prince tableau needs all seven; Euler uses one, RK4 four).
///
/// Create one per worker/thread, then pass it to any number of
/// `integrate_with` calls — buffers are resized on demand, so one workspace
/// serves systems of different dimensions. Contents are fully overwritten
/// by each call; nothing leaks between runs.
#[derive(Debug, Clone, Default)]
pub struct OdeWorkspace {
    y: Vec<f64>,
    tmp: Vec<f64>,
    k: Vec<Vec<f64>>,
}

impl OdeWorkspace {
    /// A workspace pre-sized for systems of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        let mut ws = OdeWorkspace::default();
        ws.ensure(dim);
        ws
    }

    /// Resize all buffers to dimension `dim` (no-op when already sized).
    fn ensure(&mut self, dim: usize) {
        self.y.resize(dim, 0.0);
        self.tmp.resize(dim, 0.0);
        if self.k.len() < 7 {
            self.k.resize_with(7, Vec::new);
        }
        for k in &mut self.k {
            k.resize(dim, 0.0);
        }
    }
}

/// Reusable work buffers for the lane-batched integrators: the
/// struct-of-arrays twin of [`OdeWorkspace`], holding `[f64; L]` per state
/// component plus an AoS staging row for trajectory recording.
///
/// Create one per worker, then pass it to any number of
/// `integrate_lanes_with` calls; buffers grow on demand and are fully
/// overwritten by each call.
#[derive(Debug, Clone)]
pub struct LaneWorkspace<const L: usize> {
    y: Vec<[f64; L]>,
    tmp: Vec<[f64; L]>,
    k: Vec<Vec<[f64; L]>>,
    /// AoS staging buffer for pushing one lane's state into its trajectory.
    row: Vec<f64>,
}

impl<const L: usize> Default for LaneWorkspace<L> {
    fn default() -> Self {
        LaneWorkspace {
            y: Vec::new(),
            tmp: Vec::new(),
            k: Vec::new(),
            row: Vec::new(),
        }
    }
}

impl<const L: usize> LaneWorkspace<L> {
    /// A workspace pre-sized for systems of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        let mut ws = LaneWorkspace::default();
        ws.ensure(dim);
        ws
    }

    /// Resize all buffers to dimension `dim` (no-op when already sized).
    fn ensure(&mut self, dim: usize) {
        self.y.resize(dim, [0.0; L]);
        self.tmp.resize(dim, [0.0; L]);
        if self.k.len() < 4 {
            self.k.resize_with(4, Vec::new);
        }
        for k in &mut self.k {
            k.resize(dim, [0.0; L]);
        }
        self.row.resize(dim, 0.0);
    }
}

/// Book-keeping for the lane-batched steppers: per-lane trajectories plus
/// per-lane first-failure masks (a failed lane keeps stepping — its NaNs
/// stay in its own lane — but stops recording, and its error is reported
/// with the same `t` the scalar path would have detected it at).
struct LaneRun<const L: usize> {
    trs: Vec<Trajectory>,
    failed: [Option<SolveError>; L],
}

impl<const L: usize> LaneRun<L> {
    fn start(n: usize, capacity: usize, t0: f64, y: &[[f64; L]], row: &mut [f64]) -> Self {
        let mut trs = Vec::with_capacity(L);
        for l in 0..L {
            let mut tr = Trajectory::with_capacity(n, capacity);
            for (r, yi) in row.iter_mut().zip(y) {
                *r = yi[l];
            }
            tr.push_slice(t0, &row[..n]);
            trs.push(tr);
        }
        LaneRun {
            trs,
            failed: std::array::from_fn(|_| None),
        }
    }

    /// Check finiteness per live lane, record `y` into live lanes'
    /// trajectories when `record` is set. Returns `false` once every lane
    /// has failed (nothing left to step for).
    fn check_and_record(&mut self, t: f64, y: &[[f64; L]], row: &mut [f64], record: bool) -> bool {
        let n = row.len();
        let mut live = false;
        for l in 0..L {
            if self.failed[l].is_some() {
                continue;
            }
            if !y.iter().all(|yi| yi[l].is_finite()) {
                self.failed[l] = Some(SolveError::NonFinite { t });
                continue;
            }
            live = true;
            if record {
                for (r, yi) in row.iter_mut().zip(y) {
                    *r = yi[l];
                }
                self.trs[l].push_slice(t, &row[..n]);
            }
        }
        live
    }

    /// Finish the run: the lowest failed lane's error (matching the
    /// lowest-seed-order error the scalar ensemble path reports), or all
    /// lanes' trajectories.
    fn finish(mut self, stats: SolveStats) -> Result<Vec<Trajectory>, SolveError> {
        for f in &mut self.failed {
            if let Some(e) = f.take() {
                return Err(e);
            }
        }
        for tr in &mut self.trs {
            tr.set_stats(stats);
        }
        Ok(self.trs)
    }
}

/// Forward Euler with a fixed step. Mostly a baseline for convergence tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Euler {
    /// Step size.
    pub dt: f64,
}

impl Euler {
    /// Integrate from `t0` to `t1`, recording every `stride`-th step (the
    /// initial and final states are always recorded). Allocates work buffers
    /// internally; see [`Euler::integrate_with`] for the reusable-buffer
    /// form.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadConfig`] for a non-positive step or empty interval,
    /// [`SolveError::NonFinite`] if the state blows up.
    pub fn integrate(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
        stride: usize,
    ) -> Result<Trajectory, SolveError> {
        self.integrate_with(sys, t0, y0, t1, stride, &mut OdeWorkspace::new(y0.len()))
    }

    /// Like [`Euler::integrate`], but stepping through the caller-provided
    /// workspace: the hot loop performs no allocations beyond amortized
    /// trajectory growth.
    ///
    /// # Errors
    ///
    /// Same as [`Euler::integrate`].
    pub fn integrate_with(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
        stride: usize,
        ws: &mut OdeWorkspace,
    ) -> Result<Trajectory, SolveError> {
        validate_fixed(self.dt, t0, t1, y0.len(), sys.dim())?;
        let stride = stride.max(1);
        let n = y0.len();
        ws.ensure(n);
        let OdeWorkspace { y, k, .. } = ws;
        let y = &mut y[..n];
        y.copy_from_slice(y0);
        let dydt = &mut k[0][..];
        let steps = ((t1 - t0) / self.dt).ceil() as usize;
        let mut tr = Trajectory::with_capacity(n, steps / stride + 2);
        tr.push_slice(t0, y);
        let dt = (t1 - t0) / steps as f64;
        let mut t = t0;
        for k in 0..steps {
            sys.rhs(t, y, dydt);
            for (yi, di) in y.iter_mut().zip(dydt.iter()) {
                *yi += dt * di;
            }
            t = t0 + (k + 1) as f64 * dt;
            check_finite(t, y)?;
            if (k + 1) % stride == 0 || k + 1 == steps {
                tr.push_slice(t, y);
            }
        }
        tr.set_stats(SolveStats {
            accepted: steps,
            rejected: 0,
            rhs_evals: steps,
        });
        Ok(tr)
    }

    /// Lane-batched [`Euler::integrate_with`]: steps `L` independent
    /// instances in lockstep, producing one trajectory per lane. Each
    /// lane's trajectory (samples *and* stats) is bit-identical to a scalar
    /// [`Euler::integrate_with`] of that lane alone — the update arithmetic
    /// is elementwise and ordered exactly like the scalar loop.
    ///
    /// `y0` is struct-of-arrays: `y0[i][l]` is state component `i` of lane
    /// `l`.
    ///
    /// # Errors
    ///
    /// As [`Euler::integrate_with`]; when lanes fail, the *lowest* failed
    /// lane's error is reported (lanes keep stepping after another lane
    /// fails, so the reported lane and time match the scalar path).
    pub fn integrate_lanes_with<const L: usize>(
        &self,
        sys: &impl crate::system::LanedOdeSystem<L>,
        t0: f64,
        y0: &[[f64; L]],
        t1: f64,
        stride: usize,
        ws: &mut LaneWorkspace<L>,
    ) -> Result<Vec<Trajectory>, SolveError> {
        validate_fixed(self.dt, t0, t1, y0.len(), sys.dim())?;
        let stride = stride.max(1);
        let n = y0.len();
        ws.ensure(n);
        let LaneWorkspace { y, k, row, .. } = ws;
        let y = &mut y[..n];
        y.copy_from_slice(y0);
        let dydt = &mut k[0][..];
        let steps = ((t1 - t0) / self.dt).ceil() as usize;
        let mut run = LaneRun::start(n, steps / stride + 2, t0, y, row);
        let dt = (t1 - t0) / steps as f64;
        let mut t = t0;
        for step in 0..steps {
            sys.rhs(t, y, dydt);
            for (yi, di) in y.iter_mut().zip(dydt.iter()) {
                for l in 0..L {
                    yi[l] += dt * di[l];
                }
            }
            t = t0 + (step + 1) as f64 * dt;
            let record = (step + 1) % stride == 0 || step + 1 == steps;
            if !run.check_and_record(t, y, row, record) {
                break;
            }
        }
        run.finish(SolveStats {
            accepted: steps,
            rejected: 0,
            rhs_evals: steps,
        })
    }
}

/// Classical fourth-order Runge–Kutta with a fixed step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rk4 {
    /// Step size.
    pub dt: f64,
}

impl Rk4 {
    /// Integrate from `t0` to `t1`, recording every `stride`-th step (the
    /// initial and final states are always recorded). Allocates work buffers
    /// internally; see [`Rk4::integrate_with`] for the reusable-buffer form.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadConfig`] for a non-positive step or empty interval,
    /// [`SolveError::NonFinite`] if the state blows up.
    pub fn integrate(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
        stride: usize,
    ) -> Result<Trajectory, SolveError> {
        self.integrate_with(sys, t0, y0, t1, stride, &mut OdeWorkspace::new(y0.len()))
    }

    /// Like [`Rk4::integrate`], but stepping through the caller-provided
    /// workspace: the hot loop performs no allocations beyond amortized
    /// trajectory growth.
    ///
    /// # Errors
    ///
    /// Same as [`Rk4::integrate`].
    pub fn integrate_with(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
        stride: usize,
        ws: &mut OdeWorkspace,
    ) -> Result<Trajectory, SolveError> {
        validate_fixed(self.dt, t0, t1, y0.len(), sys.dim())?;
        let stride = stride.max(1);
        let n = y0.len();
        ws.ensure(n);
        let OdeWorkspace { y, tmp, k } = ws;
        let y = &mut y[..n];
        y.copy_from_slice(y0);
        let (ka, rest) = k.split_at_mut(1);
        let (kb, rest) = rest.split_at_mut(1);
        let (kc, rest) = rest.split_at_mut(1);
        let (k1, k2, k3, k4) = (
            &mut ka[0][..],
            &mut kb[0][..],
            &mut kc[0][..],
            &mut rest[0][..],
        );
        let steps = ((t1 - t0) / self.dt).ceil() as usize;
        let mut tr = Trajectory::with_capacity(n, steps / stride + 2);
        tr.push_slice(t0, y);
        let dt = (t1 - t0) / steps as f64;
        let mut t = t0;
        for step in 0..steps {
            sys.rhs(t, y, k1);
            for i in 0..n {
                tmp[i] = y[i] + 0.5 * dt * k1[i];
            }
            sys.rhs(t + 0.5 * dt, tmp, k2);
            for i in 0..n {
                tmp[i] = y[i] + 0.5 * dt * k2[i];
            }
            sys.rhs(t + 0.5 * dt, tmp, k3);
            for i in 0..n {
                tmp[i] = y[i] + dt * k3[i];
            }
            sys.rhs(t + dt, tmp, k4);
            for i in 0..n {
                y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            }
            t = t0 + (step + 1) as f64 * dt;
            check_finite(t, y)?;
            if (step + 1) % stride == 0 || step + 1 == steps {
                tr.push_slice(t, y);
            }
        }
        tr.set_stats(SolveStats {
            accepted: steps,
            rejected: 0,
            rhs_evals: 4 * steps,
        });
        Ok(tr)
    }

    /// Lane-batched [`Rk4::integrate_with`]: steps `L` independent
    /// instances in lockstep, producing one trajectory per lane. Each
    /// lane's trajectory (samples *and* stats) is bit-identical to a scalar
    /// [`Rk4::integrate_with`] of that lane alone: every stage update is
    /// elementwise with the same operation order as the scalar loop, and
    /// fixed-step lockstep means all lanes share the exact `t` grid (which
    /// also keeps the laned interpreter's time-prologue cache shared).
    ///
    /// This is the workhorse of the `ark-sim` laned ensembles. The adaptive
    /// [`DormandPrince`] deliberately has **no** laned form — see its type
    /// docs for the lockstep-fixed-step-only policy.
    ///
    /// `y0` is struct-of-arrays: `y0[i][l]` is state component `i` of lane
    /// `l`.
    ///
    /// # Errors
    ///
    /// As [`Rk4::integrate_with`]; when lanes fail, the *lowest* failed
    /// lane's error is reported (lanes keep stepping after another lane
    /// fails, so the reported lane and time match the scalar path).
    pub fn integrate_lanes_with<const L: usize>(
        &self,
        sys: &impl crate::system::LanedOdeSystem<L>,
        t0: f64,
        y0: &[[f64; L]],
        t1: f64,
        stride: usize,
        ws: &mut LaneWorkspace<L>,
    ) -> Result<Vec<Trajectory>, SolveError> {
        validate_fixed(self.dt, t0, t1, y0.len(), sys.dim())?;
        let stride = stride.max(1);
        let n = y0.len();
        ws.ensure(n);
        let LaneWorkspace { y, tmp, k, row } = ws;
        let y = &mut y[..n];
        y.copy_from_slice(y0);
        let (ka, rest) = k.split_at_mut(1);
        let (kb, rest) = rest.split_at_mut(1);
        let (kc, rest) = rest.split_at_mut(1);
        let (k1, k2, k3, k4) = (
            &mut ka[0][..],
            &mut kb[0][..],
            &mut kc[0][..],
            &mut rest[0][..],
        );
        let steps = ((t1 - t0) / self.dt).ceil() as usize;
        let mut run = LaneRun::start(n, steps / stride + 2, t0, y, row);
        let dt = (t1 - t0) / steps as f64;
        let mut t = t0;
        for step in 0..steps {
            sys.rhs(t, y, k1);
            for i in 0..n {
                for l in 0..L {
                    tmp[i][l] = y[i][l] + 0.5 * dt * k1[i][l];
                }
            }
            sys.rhs(t + 0.5 * dt, tmp, k2);
            for i in 0..n {
                for l in 0..L {
                    tmp[i][l] = y[i][l] + 0.5 * dt * k2[i][l];
                }
            }
            sys.rhs(t + 0.5 * dt, tmp, k3);
            for i in 0..n {
                for l in 0..L {
                    tmp[i][l] = y[i][l] + dt * k3[i][l];
                }
            }
            sys.rhs(t + dt, tmp, k4);
            for i in 0..n {
                for l in 0..L {
                    y[i][l] += dt / 6.0 * (k1[i][l] + 2.0 * k2[i][l] + 2.0 * k3[i][l] + k4[i][l]);
                }
            }
            t = t0 + (step + 1) as f64 * dt;
            let record = (step + 1) % stride == 0 || step + 1 == steps;
            if !run.check_and_record(t, y, row, record) {
                break;
            }
        }
        run.finish(SolveStats {
            accepted: steps,
            rejected: 0,
            rhs_evals: 4 * steps,
        })
    }
}

fn validate_fixed(dt: f64, t0: f64, t1: f64, y_len: usize, dim: usize) -> Result<(), SolveError> {
    if dt.is_nan() || dt <= 0.0 {
        return Err(SolveError::BadConfig(format!(
            "step dt={dt} must be positive"
        )));
    }
    if t0.is_nan() || t1.is_nan() || t1 <= t0 {
        return Err(SolveError::BadConfig(format!(
            "empty interval [{t0}, {t1}]"
        )));
    }
    if y_len != dim {
        return Err(SolveError::BadConfig(format!(
            "initial state has {y_len} entries but the system dimension is {dim}"
        )));
    }
    Ok(())
}

/// Adaptive Dormand–Prince 5(4) embedded Runge–Kutta pair.
///
/// # No laned form (lockstep fixed-step-only policy)
///
/// The lane-batched ensemble path ([`Rk4::integrate_lanes_with`] /
/// [`Euler::integrate_lanes_with`]) deliberately does **not** extend to
/// this solver. Lockstep lanes must share one step sequence, but the PI
/// controller derives each step from the error norm of *one* instance:
/// any shared policy (min/vote across lanes) changes the accepted-step grid
/// and therefore breaks the bit-identity guarantee against the scalar
/// path, while per-lane step sequences are no longer lanes at all.
/// Adaptive ensembles in `ark-sim` simply fall back to the scalar path per
/// instance; a step-size *voting* mode with per-lane early-exit masks is
/// recorded as a ROADMAP follow-on for workloads that can trade
/// bit-identity for throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DormandPrince {
    /// Relative error tolerance.
    pub rtol: f64,
    /// Absolute error tolerance.
    pub atol: f64,
    /// Initial step (guessed from the interval when `None`).
    pub h0: Option<f64>,
    /// Smallest step before declaring failure.
    pub h_min: f64,
    /// Largest allowed step.
    pub h_max: f64,
}

impl Default for DormandPrince {
    fn default() -> Self {
        DormandPrince {
            rtol: 1e-6,
            atol: 1e-9,
            h0: None,
            h_min: 1e-14,
            h_max: f64::INFINITY,
        }
    }
}

impl DormandPrince {
    /// Construct with tolerances and defaults for the step bounds.
    pub fn new(rtol: f64, atol: f64) -> Self {
        DormandPrince {
            rtol,
            atol,
            ..Default::default()
        }
    }

    /// Integrate from `t0` to `t1`, recording every accepted step. Allocates
    /// work buffers internally; see [`DormandPrince::integrate_with`] for
    /// the reusable-buffer form.
    ///
    /// Samples land on the accepted (possibly large) steps; if you need to
    /// interpolate the result densely, bound `h_max` so linear interpolation
    /// between samples stays accurate.
    ///
    /// The returned trajectory's [`SolveStats`] report
    /// accepted *and* rejected step counts — rejections are where the PI
    /// controller earned its keep.
    ///
    /// # Errors
    ///
    /// [`SolveError::StepSizeUnderflow`] when the error controller cannot
    /// meet the tolerance, [`SolveError::NonFinite`] on blow-up, and
    /// [`SolveError::BadConfig`] for invalid configuration.
    pub fn integrate(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
    ) -> Result<Trajectory, SolveError> {
        self.integrate_with(sys, t0, y0, t1, &mut OdeWorkspace::new(y0.len()))
    }

    /// Like [`DormandPrince::integrate`], but stepping through the
    /// caller-provided workspace: the hot loop performs no allocations
    /// beyond amortized trajectory growth.
    ///
    /// # Errors
    ///
    /// Same as [`DormandPrince::integrate`].
    pub fn integrate_with(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
        ws: &mut OdeWorkspace,
    ) -> Result<Trajectory, SolveError> {
        if t0.is_nan() || t1.is_nan() || t1 <= t0 {
            return Err(SolveError::BadConfig(format!(
                "empty interval [{t0}, {t1}]"
            )));
        }
        if y0.len() != sys.dim() {
            return Err(SolveError::BadConfig(format!(
                "initial state has {} entries but the system dimension is {}",
                y0.len(),
                sys.dim()
            )));
        }
        if self.rtol.is_nan() || self.rtol <= 0.0 || self.atol.is_nan() || self.atol < 0.0 {
            return Err(SolveError::BadConfig("tolerances must be positive".into()));
        }

        // Dormand–Prince coefficients.
        const C: [f64; 7] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
        const A: [[f64; 6]; 7] = [
            [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
            [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
            [
                19372.0 / 6561.0,
                -25360.0 / 2187.0,
                64448.0 / 6561.0,
                -212.0 / 729.0,
                0.0,
                0.0,
            ],
            [
                9017.0 / 3168.0,
                -355.0 / 33.0,
                46732.0 / 5247.0,
                49.0 / 176.0,
                -5103.0 / 18656.0,
                0.0,
            ],
            [
                35.0 / 384.0,
                0.0,
                500.0 / 1113.0,
                125.0 / 192.0,
                -2187.0 / 6784.0,
                11.0 / 84.0,
            ],
        ];
        // 5th-order solution weights (same as A[6]).
        const B5: [f64; 7] = [
            35.0 / 384.0,
            0.0,
            500.0 / 1113.0,
            125.0 / 192.0,
            -2187.0 / 6784.0,
            11.0 / 84.0,
            0.0,
        ];
        // 4th-order embedded weights.
        const B4: [f64; 7] = [
            5179.0 / 57600.0,
            0.0,
            7571.0 / 16695.0,
            393.0 / 640.0,
            -92097.0 / 339200.0,
            187.0 / 2100.0,
            1.0 / 40.0,
        ];

        let n = y0.len();
        ws.ensure(n);
        let OdeWorkspace { y, tmp, k } = ws;
        let y = &mut y[..n];
        y.copy_from_slice(y0);
        let ytmp = &mut tmp[..n];
        let mut t = t0;
        let mut h = self.h0.unwrap_or((t1 - t0) / 100.0).min(self.h_max);
        let mut tr = Trajectory::with_capacity(n, 128);
        tr.push_slice(t0, y);
        let mut stats = SolveStats::default();

        // FSAL: k[0] of the next step reuses k[6] of the accepted step.
        sys.rhs(t, y, &mut k[0]);
        stats.rhs_evals += 1;
        let mut err_prev: f64 = 1.0;

        while t < t1 {
            if h < self.h_min {
                return Err(SolveError::StepSizeUnderflow { t });
            }
            if t + h > t1 {
                h = t1 - t;
            }
            for s in 1..7 {
                for i in 0..n {
                    let mut acc = 0.0;
                    for (j, kj) in k.iter().enumerate().take(s) {
                        let a = A[s][j];
                        if a != 0.0 {
                            acc += a * kj[i];
                        }
                    }
                    ytmp[i] = y[i] + h * acc;
                }
                let (head, tail) = k.split_at_mut(s);
                let _ = head;
                sys.rhs(t + C[s] * h, ytmp, &mut tail[0]);
                stats.rhs_evals += 1;
            }
            // 5th-order candidate and embedded error estimate.
            let mut err: f64 = 0.0;
            for i in 0..n {
                let mut y5 = y[i];
                let mut e = 0.0;
                for s in 0..7 {
                    y5 += h * B5[s] * k[s][i];
                    e += h * (B5[s] - B4[s]) * k[s][i];
                }
                ytmp[i] = y5;
                let scale = self.atol + self.rtol * y[i].abs().max(y5.abs());
                let r = e / scale;
                err += r * r;
            }
            err = (err / n as f64).sqrt();

            if err <= 1.0 || h <= self.h_min * 2.0 {
                // Accept.
                t += h;
                y.copy_from_slice(ytmp);
                check_finite(t, y)?;
                tr.push_slice(t, y);
                stats.accepted += 1;
                // FSAL: last stage evaluated at (t+h, y_new).
                k.swap(0, 6);
                // PI step controller.
                let e = err.max(1e-10);
                let fac = 0.9 * e.powf(-0.7 / 5.0) * err_prev.powf(0.4 / 5.0);
                h = (h * fac.clamp(0.2, 5.0)).min(self.h_max);
                err_prev = e;
            } else {
                stats.rejected += 1;
                h *= (0.9 * err.powf(-0.2)).clamp(0.1, 1.0);
            }
        }
        tr.set_stats(stats);
        Ok(tr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::FnSystem;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0])
    }

    #[test]
    fn euler_decay_first_order() {
        let sys = decay();
        let tr = Euler { dt: 1e-3 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 100)
            .unwrap();
        let (_, yf) = tr.last().unwrap();
        assert!((yf[0] - (-1.0f64).exp()).abs() < 1e-3);
    }

    #[test]
    fn euler_first_order_convergence() {
        // Halving dt halves the global error on y' = -y.
        let sys = decay();
        let err = |dt: f64| {
            let tr = Euler { dt }
                .integrate(&sys, 0.0, &[1.0], 1.0, usize::MAX)
                .unwrap();
            (tr.last().unwrap().1[0] - (-1.0f64).exp()).abs()
        };
        let ratio = err(0.01) / err(0.005);
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn rk4_decay_high_accuracy() {
        let sys = decay();
        let tr = Rk4 { dt: 1e-2 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 10)
            .unwrap();
        let (_, yf) = tr.last().unwrap();
        assert!((yf[0] - (-1.0f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn rk4_fourth_order_convergence() {
        let sys = decay();
        let err = |dt: f64| {
            let tr = Rk4 { dt }
                .integrate(&sys, 0.0, &[1.0], 1.0, usize::MAX)
                .unwrap();
            (tr.last().unwrap().1[0] - (-1.0f64).exp()).abs()
        };
        let e1 = err(0.1);
        let e2 = err(0.05);
        let ratio = e1 / e2;
        // Fourth order: halving dt divides error by ~16.
        assert!(ratio > 12.0 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn rk4_harmonic_oscillator_conserves_energy() {
        let sys = FnSystem::new(2, |_t, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let tr = Rk4 { dt: 1e-3 }
            .integrate(&sys, 0.0, &[1.0, 0.0], 2.0 * std::f64::consts::PI, 100)
            .unwrap();
        let (_, yf) = tr.last().unwrap();
        // One full period returns to the initial condition.
        assert!((yf[0] - 1.0).abs() < 1e-8);
        assert!(yf[1].abs() < 1e-8);
        let energy = yf[0] * yf[0] + yf[1] * yf[1];
        assert!((energy - 1.0).abs() < 1e-10);
    }

    #[test]
    fn dp45_decay_meets_tolerance() {
        let sys = decay();
        let tr = DormandPrince::new(1e-9, 1e-12)
            .integrate(&sys, 0.0, &[1.0], 1.0)
            .unwrap();
        let (_, yf) = tr.last().unwrap();
        assert!((yf[0] - (-1.0f64).exp()).abs() < 1e-8);
    }

    #[test]
    fn dp45_forced_system() {
        // dy/dt = cos(t), y(0)=0 => y(t)=sin(t).
        let sys = FnSystem::new(1, |t: f64, _y: &[f64], d: &mut [f64]| d[0] = t.cos());
        // Bound the step so linear interpolation between accepted samples is
        // accurate at the probe points.
        let solver = DormandPrince {
            h_max: 1e-2,
            ..DormandPrince::new(1e-8, 1e-11)
        };
        let tr = solver.integrate(&sys, 0.0, &[0.0], 3.0).unwrap();
        for t in [0.5, 1.0, 2.0, 3.0] {
            assert!((tr.value_at(t, 0) - t.sin()).abs() < 1e-5, "t={t}");
        }
    }

    #[test]
    fn dp45_adapts_step_count() {
        // A stiff-ish decay needs more steps at tight tolerance.
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -50.0 * y[0]);
        let loose = DormandPrince::new(1e-3, 1e-6)
            .integrate(&sys, 0.0, &[1.0], 1.0)
            .unwrap();
        let tight = DormandPrince::new(1e-10, 1e-13)
            .integrate(&sys, 0.0, &[1.0], 1.0)
            .unwrap();
        assert!(tight.len() > loose.len());
    }

    #[test]
    fn dp45_reports_rejected_steps() {
        // Force the controller to overreach: a stiff decay attacked with a
        // huge initial step must reject at least once before settling.
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -50.0 * y[0]);
        let solver = DormandPrince {
            h0: Some(0.5),
            ..DormandPrince::new(1e-8, 1e-11)
        };
        let tr = solver.integrate(&sys, 0.0, &[1.0], 1.0).unwrap();
        let stats = tr.stats();
        assert!(stats.rejected >= 1, "stats {stats:?}");
        assert_eq!(stats.accepted, tr.len() - 1);
        // 6 fresh stages per attempt (FSAL) plus the priming evaluation.
        assert_eq!(
            stats.rhs_evals,
            1 + 6 * (stats.accepted + stats.rejected),
            "stats {stats:?}"
        );
    }

    #[test]
    fn fixed_step_stats_count_steps() {
        let sys = decay();
        let tr = Rk4 { dt: 0.1 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 1)
            .unwrap();
        let stats = tr.stats();
        assert_eq!(stats.accepted, 10);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.rhs_evals, 40);
        let tr = Euler { dt: 0.1 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 1)
            .unwrap();
        assert_eq!(tr.stats().rhs_evals, 10);
    }

    #[test]
    fn workspace_is_reusable_across_dims_and_solvers() {
        let mut ws = OdeWorkspace::new(1);
        let sys1 = decay();
        let a = Rk4 { dt: 1e-2 }
            .integrate_with(&sys1, 0.0, &[1.0], 1.0, 10, &mut ws)
            .unwrap();
        // Same workspace, larger system.
        let sys2 = FnSystem::new(2, |_t, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        let b = DormandPrince::default()
            .integrate_with(&sys2, 0.0, &[1.0, 0.0], 1.0, &mut ws)
            .unwrap();
        // And back down again, matching the fresh-buffer path exactly.
        let c = Rk4 { dt: 1e-2 }
            .integrate_with(&sys1, 0.0, &[1.0], 1.0, 10, &mut ws)
            .unwrap();
        assert_eq!(a, c);
        assert_eq!(b.dim(), 2);
    }

    #[test]
    fn fixed_step_hits_end_exactly() {
        let sys = decay();
        // dt that does not divide the interval.
        let tr = Rk4 { dt: 0.3 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 1)
            .unwrap();
        assert!((tr.last().unwrap().0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_config_errors() {
        let sys = decay();
        assert!(matches!(
            Rk4 { dt: 0.0 }.integrate(&sys, 0.0, &[1.0], 1.0, 1),
            Err(SolveError::BadConfig(_))
        ));
        assert!(matches!(
            Rk4 { dt: 0.1 }.integrate(&sys, 1.0, &[1.0], 0.0, 1),
            Err(SolveError::BadConfig(_))
        ));
        assert!(matches!(
            Rk4 { dt: 0.1 }.integrate(&sys, 0.0, &[1.0, 2.0], 1.0, 1),
            Err(SolveError::BadConfig(_))
        ));
        assert!(matches!(
            DormandPrince::new(-1.0, 0.0).integrate(&sys, 0.0, &[1.0], 1.0),
            Err(SolveError::BadConfig(_))
        ));
    }

    #[test]
    fn nonfinite_detected() {
        // dy/dt = y^2 blows up at t=1 for y0=1.
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = y[0] * y[0]);
        let res = Rk4 { dt: 1e-3 }.integrate(&sys, 0.0, &[1.0], 2.0, 1);
        assert!(matches!(res, Err(SolveError::NonFinite { .. })));
    }

    /// A laned wrapper around independent per-lane scalar closures.
    #[allow(clippy::type_complexity)]
    fn laned_decay<const L: usize>(
        rates: [f64; L],
    ) -> crate::system::FnLanedSystem<L, impl Fn(f64, &[[f64; L]], &mut [[f64; L]])> {
        crate::system::FnLanedSystem::new(1, move |_t, y: &[[f64; L]], d: &mut [[f64; L]]| {
            for l in 0..L {
                d[0][l] = -rates[l] * y[0][l];
            }
        })
    }

    #[test]
    fn laned_rk4_matches_scalar_bit_for_bit() {
        const L: usize = 4;
        let rates = [0.5, 1.0, 2.0, 3.25];
        let y0s = [1.0, -2.0, 0.125, 7.5];
        let laned = Rk4 { dt: 1e-2 }
            .integrate_lanes_with(
                &laned_decay(rates),
                0.0,
                &[y0s],
                1.0,
                7,
                &mut LaneWorkspace::new(1),
            )
            .unwrap();
        for l in 0..L {
            let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| {
                d[0] = -rates[l] * y[0]
            });
            let scalar = Rk4 { dt: 1e-2 }
                .integrate(&sys, 0.0, &[y0s[l]], 1.0, 7)
                .unwrap();
            assert_eq!(scalar, laned[l], "lane {l}");
        }
    }

    #[test]
    fn laned_euler_matches_scalar_bit_for_bit() {
        const L: usize = 2;
        let rates = [0.5, 4.0];
        let laned = Euler { dt: 1e-2 }
            .integrate_lanes_with(
                &laned_decay(rates),
                0.0,
                &[[1.0; L]],
                1.0,
                3,
                &mut LaneWorkspace::new(1),
            )
            .unwrap();
        for l in 0..L {
            let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| {
                d[0] = -rates[l] * y[0]
            });
            let scalar = Euler { dt: 1e-2 }
                .integrate(&sys, 0.0, &[1.0], 1.0, 3)
                .unwrap();
            assert_eq!(scalar, laned[l], "lane {l}");
        }
    }

    #[test]
    fn laned_failure_reports_lowest_lane_at_scalar_time() {
        // Lane 1 blows up (dy/dt = y², y0 = 1 → blow-up at t = 1); lane 0 is
        // a benign decay. The group reports lane 1's NonFinite at the same t
        // a scalar run of lane 1 alone detects it.
        const L: usize = 2;
        let sys = crate::system::FnLanedSystem::new(1, |_t, y: &[[f64; L]], d: &mut [[f64; L]]| {
            d[0][0] = -y[0][0];
            d[0][1] = y[0][1] * y[0][1];
        });
        let got = Rk4 { dt: 1e-3 }
            .integrate_lanes_with(&sys, 0.0, &[[1.0, 1.0]], 2.0, 1, &mut LaneWorkspace::new(1))
            .unwrap_err();
        let scalar_sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = y[0] * y[0]);
        let want = Rk4 { dt: 1e-3 }
            .integrate(&scalar_sys, 0.0, &[1.0], 2.0, 1)
            .unwrap_err();
        assert_eq!(got, want);
    }

    #[test]
    fn laned_workspace_is_reusable_across_dims() {
        let mut ws = LaneWorkspace::<2>::new(1);
        let a = Rk4 { dt: 1e-2 }
            .integrate_lanes_with(
                &laned_decay([1.0, 2.0]),
                0.0,
                &[[1.0, 1.0]],
                1.0,
                5,
                &mut ws,
            )
            .unwrap();
        // Same workspace, larger system (two state components).
        let sys2 =
            crate::system::FnLanedSystem::new(2, |_t, y: &[[f64; 2]], d: &mut [[f64; 2]]| {
                for l in 0..2 {
                    d[0][l] = y[1][l];
                    d[1][l] = -y[0][l];
                }
            });
        let b = Rk4 { dt: 1e-2 }
            .integrate_lanes_with(&sys2, 0.0, &[[1.0, 1.0], [0.0, 0.0]], 1.0, 5, &mut ws)
            .unwrap();
        // And back down, matching the fresh-buffer path exactly.
        let c = Rk4 { dt: 1e-2 }
            .integrate_lanes_with(
                &laned_decay([1.0, 2.0]),
                0.0,
                &[[1.0, 1.0]],
                1.0,
                5,
                &mut LaneWorkspace::new(1),
            )
            .unwrap();
        assert_eq!(a, c);
        assert_eq!(b[0].dim(), 2);
    }

    #[test]
    fn stride_reduces_samples() {
        let sys = decay();
        let dense = Rk4 { dt: 1e-3 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 1)
            .unwrap();
        let sparse = Rk4 { dt: 1e-3 }
            .integrate(&sys, 0.0, &[1.0], 1.0, 100)
            .unwrap();
        assert!(dense.len() > 900);
        assert!(sparse.len() < 20);
        // Endpoint recorded in both.
        assert_eq!(dense.last().unwrap().0, sparse.last().unwrap().0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::system::{FnSystem, LinearSystem};
    use proptest::prelude::*;

    proptest! {
        /// Constant derivative integrates to a straight line under all solvers.
        #[test]
        fn constant_rhs_linear(c in -5.0..5.0f64, t1 in 0.1..3.0f64) {
            let sys = FnSystem::new(1, move |_t, _y: &[f64], d: &mut [f64]| d[0] = c);
            let rk = Rk4 { dt: 0.01 }.integrate(&sys, 0.0, &[0.0], t1, 1).unwrap();
            prop_assert!((rk.last().unwrap().1[0] - c * t1).abs() < 1e-9);
            let dp = DormandPrince::default().integrate(&sys, 0.0, &[0.0], t1).unwrap();
            prop_assert!((dp.last().unwrap().1[0] - c * t1).abs() < 1e-6);
        }

        /// Linear decay stays positive and monotone under RK4.
        #[test]
        fn decay_monotone(y0 in 0.1..10.0f64, rate in 0.1..5.0f64) {
            let sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| d[0] = -rate * y[0]);
            let tr = Rk4 { dt: 1e-3 }.integrate(&sys, 0.0, &[y0], 1.0, 10).unwrap();
            let mut prev = f64::INFINITY;
            for (_, s) in tr.iter() {
                prop_assert!(s[0] > 0.0);
                prop_assert!(s[0] <= prev + 1e-12);
                prev = s[0];
            }
        }

        /// RK4 and Dormand–Prince agree on a smooth nonlinear system.
        #[test]
        fn solvers_agree(a in 0.5..2.0f64) {
            let sys = FnSystem::new(1, move |t: f64, y: &[f64], d: &mut [f64]| {
                d[0] = -a * y[0] + (3.0 * t).sin()
            });
            let rk = Rk4 { dt: 1e-3 }.integrate(&sys, 0.0, &[1.0], 2.0, 1).unwrap();
            let solver = DormandPrince { h_max: 1e-2, ..DormandPrince::new(1e-9, 1e-12) };
            let dp = solver.integrate(&sys, 0.0, &[1.0], 2.0).unwrap();
            // Endpoint: both solvers land exactly on t=2, so only solver
            // error shows up.
            let (r_end, d_end) = (rk.last().unwrap().1[0], dp.last().unwrap().1[0]);
            prop_assert!((r_end - d_end).abs() < 1e-8, "end rk={} dp={}", r_end, d_end);
            // Interior points additionally carry the linear-interpolation
            // error of the adaptive trace (O(h_max^2) ≈ 1e-4 worst case).
            for t in [0.5, 1.0, 1.5] {
                let (r, d) = (rk.value_at(t, 0), dp.value_at(t, 0));
                prop_assert!((r - d).abs() < 1e-4, "t={} rk={} dp={}", t, r, d);
            }
        }

        /// Lane-batched RK4/Euler over random linear-decay lanes is
        /// bit-identical to integrating each lane through the scalar path,
        /// for awkward strides and intervals.
        #[test]
        fn laned_matches_scalar_on_random_decays(
            rates in proptest::collection::vec(0.05..4.0f64, 4),
            y0 in proptest::collection::vec(-2.0..2.0f64, 4),
            t1 in 0.3..1.5f64,
            stride in 1usize..9,
        ) {
            const L: usize = 4;
            let rs: [f64; L] = [rates[0], rates[1], rates[2], rates[3]];
            let sys = crate::system::FnLanedSystem::new(1, move |_t, y: &[[f64; L]], d: &mut [[f64; L]]| {
                for l in 0..L {
                    d[0][l] = -rs[l] * y[0][l] + (2.0 * y[0][l]).sin() * 0.1;
                }
            });
            let y0s = [[y0[0], y0[1], y0[2], y0[3]]];
            for dt in [0.05, 0.013] {
                let laned = Rk4 { dt }
                    .integrate_lanes_with(&sys, 0.0, &y0s, t1, stride, &mut LaneWorkspace::new(1))
                    .unwrap();
                let laned_e = Euler { dt }
                    .integrate_lanes_with(&sys, 0.0, &y0s, t1, stride, &mut LaneWorkspace::new(1))
                    .unwrap();
                for l in 0..L {
                    let scalar_sys = FnSystem::new(1, move |_t, y: &[f64], d: &mut [f64]| {
                        d[0] = -rs[l] * y[0] + (2.0 * y[0]).sin() * 0.1;
                    });
                    let rk = Rk4 { dt }.integrate(&scalar_sys, 0.0, &[y0[l]], t1, stride).unwrap();
                    prop_assert_eq!(&rk, &laned[l]);
                    let eu = Euler { dt }.integrate(&scalar_sys, 0.0, &[y0[l]], t1, stride).unwrap();
                    prop_assert_eq!(&eu, &laned_e[l]);
                }
            }
        }

        /// The in-place (`integrate_with`) API is bit-identical to the
        /// legacy allocating API on random linear systems, for every solver
        /// — including when the workspace is dirty from a previous run.
        #[test]
        fn inplace_matches_allocating(
            a in proptest::collection::vec(-2.0..2.0f64, 9),
            y0 in proptest::collection::vec(-1.0..1.0f64, 3),
            f in -1.0..1.0f64,
        ) {
            let sys = LinearSystem::new(3, a, move |t: f64, b: &mut [f64]| {
                b[0] = f * t.sin();
                b[1] = 0.0;
                b[2] = -f;
            });
            let mut ws = OdeWorkspace::new(1); // deliberately undersized
            for dt in [0.05, 0.01] {
                let legacy = Euler { dt }.integrate(&sys, 0.0, &y0, 1.0, 3);
                let inplace = Euler { dt }.integrate_with(&sys, 0.0, &y0, 1.0, 3, &mut ws);
                prop_assert_eq!(legacy, inplace);
                let legacy = Rk4 { dt }.integrate(&sys, 0.0, &y0, 1.0, 3);
                let inplace = Rk4 { dt }.integrate_with(&sys, 0.0, &y0, 1.0, 3, &mut ws);
                prop_assert_eq!(legacy, inplace);
            }
            let dp = DormandPrince::new(1e-7, 1e-10);
            let legacy = dp.integrate(&sys, 0.0, &y0, 1.0);
            let inplace = dp.integrate_with(&sys, 0.0, &y0, 1.0, &mut ws);
            prop_assert_eq!(legacy, inplace);
        }
    }
}
