//! Observers: streaming readout of an integration run.
//!
//! The drive loops in [`crate::solver`] report every accepted step to an
//! [`Observer`] instead of hard-coding trajectory recording. One observer
//! type serves both the scalar and laned paths (the [`Elem`] parameter),
//! which is what lets ensemble readout run *inside* the laned hot loop
//! instead of per instance afterwards:
//!
//! * [`Strided`] — record every `stride`-th accepted step (plus the initial
//!   and final states) into one [`Trajectory`] per lane, bit-identical to
//!   the pre-redesign recording;
//! * [`DenseRecorder`] — [`Strided`] at stride 1: every accepted step;
//! * [`FinalState`] — keep only the last state, no trajectory allocation;
//! * [`Probe`] — run a closure on every accepted step (in-loop readout,
//!   convergence tests, early exit).
//!
//! Observers compose: a tuple `(A, B)` is an observer that feeds both.

use crate::solver::Elem;
use crate::trajectory::{SolveStats, Trajectory};

/// Position of one accepted step within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// 1-based index of the accepted step.
    pub index: usize,
    /// True on the final step of the run (for fixed-step methods, the step
    /// landing on `t1`; for adaptive methods, the step reaching it).
    pub last: bool,
}

/// A streaming consumer of integration output over element type `E`
/// (`f64` = one instance, `[f64; L]` = a lane group).
///
/// The drive loop calls [`Observer::start`] once, [`Observer::record`]
/// after every accepted step, and [`Observer::finish`] with the run's
/// statistics on success. `alive[l]` is false once lane `l` has failed
/// (non-finite state): its values are garbage from that point on and must
/// not be read. Scalar runs always pass `[true]`.
///
/// # Examples
///
/// A custom observer accumulating the peak of one state component in the
/// hot loop (no trajectory is ever materialized):
///
/// ```
/// use ark_ode::{FnSystem, Observer, OdeWorkspace, Rk4, Solver, SolveStats, StepInfo};
///
/// struct Peak(f64);
/// impl Observer<f64> for Peak {
///     fn start(&mut self, _t0: f64, y0: &[f64], _steps: Option<usize>) {
///         self.0 = y0[0];
///     }
///     fn record(&mut self, _t: f64, y: &[f64], _info: StepInfo, _alive: &[bool]) -> bool {
///         self.0 = self.0.max(y[0]);
///         true
///     }
///     fn finish(&mut self, _stats: SolveStats) {}
/// }
///
/// // Pure decay: the peak is the initial condition.
/// let sys = FnSystem::new(1, |_t, y, dydt| dydt[0] = -y[0]);
/// let mut peak = Peak(f64::NEG_INFINITY);
/// Rk4 { dt: 1e-2 }.solve(&sys, 0.0, &[1.0], 1.0, &mut peak, &mut OdeWorkspace::new(1))?;
/// assert_eq!(peak.0, 1.0);
/// # Ok::<(), ark_ode::SolveError>(())
/// ```
pub trait Observer<E: Elem> {
    /// The run begins at `t0` with state `y0`. For fixed-step solvers
    /// `planned_steps` carries the exact step count (a capacity hint);
    /// adaptive solvers pass `None`.
    fn start(&mut self, t0: f64, y0: &[E], planned_steps: Option<usize>);

    /// One accepted step: state `y` at time `t`. Return `false` to stop
    /// the run early (the solver still reports success, with stats covering
    /// the steps actually taken).
    fn record(&mut self, t: f64, y: &[E], info: StepInfo, alive: &[bool]) -> bool;

    /// The run finished; `stats` summarizes it. Not called when the solver
    /// returns an error.
    fn finish(&mut self, stats: SolveStats);
}

/// Record every `stride`-th accepted step — plus the initial state and the
/// final step — into one [`Trajectory`] per lane.
///
/// This reproduces the pre-redesign recording **bit for bit**: the same
/// samples at the same times with the same [`SolveStats`], for both the
/// scalar path and each lane of a laned run.
#[derive(Debug, Clone, Default)]
pub struct Strided {
    stride: usize,
    dim: usize,
    trs: Vec<Trajectory>,
    row: Vec<f64>,
}

impl Strided {
    /// Record every `stride`-th step (`stride` 0 is treated as 1).
    pub fn every(stride: usize) -> Self {
        Strided {
            stride: stride.max(1),
            ..Strided::default()
        }
    }

    /// The recorded trajectory of a scalar run.
    ///
    /// # Panics
    ///
    /// Panics if the run was laned (more than one trajectory) or never
    /// started.
    pub fn into_trajectory(mut self) -> Trajectory {
        assert_eq!(
            self.trs.len(),
            1,
            "into_trajectory on a {}-lane recording",
            self.trs.len()
        );
        self.trs.pop().expect("length checked")
    }

    /// The recorded trajectories, one per lane (lane order).
    pub fn into_trajectories(self) -> Vec<Trajectory> {
        self.trs
    }

    fn push_lane(&mut self, lane: usize, t: f64, y: &[impl Elem]) {
        for (r, yi) in self.row.iter_mut().zip(y) {
            *r = yi.get(lane);
        }
        self.trs[lane].push_slice(t, &self.row[..self.dim]);
    }
}

impl<E: Elem> Observer<E> for Strided {
    fn start(&mut self, t0: f64, y0: &[E], planned_steps: Option<usize>) {
        self.dim = y0.len();
        self.row.resize(self.dim, 0.0);
        self.trs.clear();
        let capacity = planned_steps.map_or(128, |s| s / self.stride + 2);
        for lane in 0..E::WIDTH {
            self.trs.push(Trajectory::with_capacity(self.dim, capacity));
            self.push_lane(lane, t0, y0);
        }
    }

    fn record(&mut self, t: f64, y: &[E], info: StepInfo, alive: &[bool]) -> bool {
        if info.index % self.stride == 0 || info.last {
            for (lane, &live) in alive.iter().enumerate().take(E::WIDTH) {
                if live {
                    self.push_lane(lane, t, y);
                }
            }
        }
        true
    }

    fn finish(&mut self, stats: SolveStats) {
        for tr in &mut self.trs {
            tr.set_stats(stats);
        }
    }
}

/// Record every accepted step: [`Strided`] at stride 1.
#[derive(Debug, Clone, Default)]
pub struct DenseRecorder(Strided);

impl DenseRecorder {
    /// A dense recorder.
    pub fn new() -> Self {
        DenseRecorder(Strided::every(1))
    }

    /// The recorded trajectory of a scalar run.
    ///
    /// # Panics
    ///
    /// As [`Strided::into_trajectory`].
    pub fn into_trajectory(self) -> Trajectory {
        self.0.into_trajectory()
    }

    /// The recorded trajectories, one per lane.
    pub fn into_trajectories(self) -> Vec<Trajectory> {
        self.0.into_trajectories()
    }
}

impl<E: Elem> Observer<E> for DenseRecorder {
    fn start(&mut self, t0: f64, y0: &[E], planned_steps: Option<usize>) {
        self.0.start(t0, y0, planned_steps)
    }

    fn record(&mut self, t: f64, y: &[E], info: StepInfo, alive: &[bool]) -> bool {
        self.0.record(t, y, info, alive)
    }

    fn finish(&mut self, stats: SolveStats) {
        Observer::<E>::finish(&mut self.0, stats)
    }
}

/// Keep only the most recent state — the observer for runs whose readout
/// needs nothing but the endpoint (max-cut partitions, steady states). No
/// per-step allocation, no trajectory storage.
#[derive(Debug, Clone, Default)]
pub struct FinalState {
    t: f64,
    dim: usize,
    width: usize,
    /// Lane-major storage: lane `l`'s state is `states[l*dim .. (l+1)*dim]`.
    states: Vec<f64>,
    stats: SolveStats,
}

impl FinalState {
    /// An empty final-state observer.
    pub fn new() -> Self {
        FinalState::default()
    }

    /// Time of the captured state.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// The captured state of lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or the observer never ran.
    pub fn lane_state(&self, lane: usize) -> &[f64] {
        assert!(lane < self.width, "lane {lane} of {}", self.width);
        &self.states[lane * self.dim..(lane + 1) * self.dim]
    }

    /// The captured state of a scalar run (lane 0).
    pub fn state(&self) -> &[f64] {
        self.lane_state(0)
    }

    /// Statistics of the finished run.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }
}

impl<E: Elem> Observer<E> for FinalState {
    fn start(&mut self, t0: f64, y0: &[E], _planned_steps: Option<usize>) {
        self.dim = y0.len();
        self.width = E::WIDTH;
        self.states.resize(self.dim * E::WIDTH, 0.0);
        self.t = t0;
        for (i, yi) in y0.iter().enumerate() {
            for l in 0..E::WIDTH {
                self.states[l * self.dim + i] = yi.get(l);
            }
        }
    }

    fn record(&mut self, t: f64, y: &[E], _info: StepInfo, alive: &[bool]) -> bool {
        self.t = t;
        for (i, yi) in y.iter().enumerate() {
            for (l, &live) in alive.iter().enumerate().take(E::WIDTH) {
                if live {
                    self.states[l * self.dim + i] = yi.get(l);
                }
            }
        }
        true
    }

    fn finish(&mut self, stats: SolveStats) {
        self.stats = stats;
    }
}

/// Run a closure on every accepted step — in-loop readout. The closure
/// sees the whole lane bundle (evaluate laned readout programs directly on
/// it) plus the per-lane liveness mask — a masked lane's values are
/// garbage and must be skipped — and returns `false` to stop the run
/// early, e.g. once a convergence criterion holds.
///
/// # Examples
///
/// Early exit once the state has decayed:
///
/// ```
/// use ark_ode::{FnSystem, OdeWorkspace, Probe, Rk4, Solver};
///
/// let sys = FnSystem::new(1, |_t, y, dydt| dydt[0] = -y[0]);
/// let mut probe = Probe::new(|_t, y: &[f64], _info, _alive: &[bool]| y[0] > 0.5);
/// let stats = Rk4 { dt: 1e-3 }.solve(&sys, 0.0, &[1.0], 5.0, &mut probe, &mut OdeWorkspace::new(1))?;
/// // Stopped near t = ln 2, far before t1 = 5.
/// assert!(stats.accepted < 1000, "stats {stats:?}");
/// # Ok::<(), ark_ode::SolveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Probe<F> {
    f: F,
}

impl<F> Probe<F> {
    /// A probe calling `f(t, y, info, alive)` on every accepted step.
    pub fn new(f: F) -> Self {
        Probe { f }
    }
}

impl<E: Elem, F: FnMut(f64, &[E], StepInfo, &[bool]) -> bool> Observer<E> for Probe<F> {
    fn start(&mut self, _t0: f64, _y0: &[E], _planned_steps: Option<usize>) {}

    fn record(&mut self, t: f64, y: &[E], info: StepInfo, alive: &[bool]) -> bool {
        (self.f)(t, y, info, alive)
    }

    fn finish(&mut self, _stats: SolveStats) {}
}

/// Two observers run side by side; the run stops early if either asks to.
impl<E: Elem, A: Observer<E>, B: Observer<E>> Observer<E> for (A, B) {
    fn start(&mut self, t0: f64, y0: &[E], planned_steps: Option<usize>) {
        self.0.start(t0, y0, planned_steps);
        self.1.start(t0, y0, planned_steps);
    }

    fn record(&mut self, t: f64, y: &[E], info: StepInfo, alive: &[bool]) -> bool {
        let a = self.0.record(t, y, info, alive);
        let b = self.1.record(t, y, info, alive);
        a && b
    }

    fn finish(&mut self, stats: SolveStats) {
        self.0.finish(stats);
        self.1.finish(stats);
    }
}
