//! The [`OdeSystem`] trait: what the Ark dynamical-system compiler produces
//! and what the integrators consume.

/// A scheduling hint issued by a stepper to the system it integrates.
///
/// Hints are pure optimizations: a system may ignore them entirely (the
/// default), and honoring one must never change any computed value. They
/// exist because the fused interpreter in `ark-core` caches time-dependent
/// prologue values keyed by the bit pattern of `t`; a solver that *knows*
/// the next stage reuses the current `t` (RK4 stages 2/3, Dormand–Prince
/// stages 6/7) can say so and let the system skip even the cache
/// revalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageHint {
    /// The next `rhs` call will be evaluated at exactly the same `t` (same
    /// bit pattern) as the previous `rhs` call on this system.
    SameTimeNext,
}

/// A first-order system of ordinary differential equations
/// `dy/dt = f(t, y)` with `y ∈ R^dim`.
///
/// Higher-order Ark node types are reduced to first order by the compiler's
/// `LowOrdEqs` step (paper Alg. 1), so first-order systems are the only
/// interface the integrators need.
pub trait OdeSystem {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;

    /// Evaluate the right-hand side `f(t, y)` into `dydt`.
    ///
    /// Implementations must write every element of `dydt`.
    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]);

    /// Receive a scheduling hint from the stepper (see [`StageHint`]).
    /// Default: ignored. Implementations that honor hints must stay
    /// bit-identical to ignoring them.
    fn stage_hint(&self, hint: StageHint) {
        let _ = hint;
    }

    /// Evaluate the Jacobian `∂f/∂y` at `(t, y)` into `jac` (row-major
    /// `dim × dim`, `jac[i*dim + j] = ∂fᵢ/∂yⱼ`) and return `true`, or
    /// return `false` when no analytic Jacobian is available (the default).
    ///
    /// Implicit steppers such as [`crate::TrBdf2`] call this once per step
    /// attempt and fall back to internal finite differences on `false`, so
    /// implementing it is purely an accuracy/perf upgrade — `ark-core`'s
    /// compiled systems implement it with a derivative program built by
    /// forward-mode differentiation of the value DAG.
    ///
    /// Implementations returning `true` must write every element of `jac`
    /// (structural zeros included).
    fn jacobian(&self, t: f64, y: &[f64], jac: &mut [f64]) -> bool {
        let _ = (t, y, jac);
        false
    }
}

/// A lane-batched first-order ODE system: `L` independent instances of one
/// system evaluated together, `dyₗ/dt = fₗ(t, yₗ)` for lanes `l = 0..L`.
///
/// State is struct-of-arrays: `y[i][l]` is state component `i` of lane `l`,
/// which is what lets implementations (notably the fused laned interpreter
/// in `ark-expr`) apply each operation elementwise across lanes and have
/// the compiler auto-vectorize. Implementations must keep lanes
/// *independent* — lane `l`'s derivatives may depend only on lane `l`'s
/// state — and bit-identical to evaluating each lane through a scalar
/// [`OdeSystem`]; the lane-batched integrators rely on both.
pub trait LanedOdeSystem<const L: usize> {
    /// Dimension of each lane's state vector.
    fn dim(&self) -> usize;

    /// Evaluate all lanes' right-hand sides at time `t`.
    ///
    /// Implementations must write every element of `dydt`.
    fn rhs(&self, t: f64, y: &[[f64; L]], dydt: &mut [[f64; L]]);

    /// Receive a scheduling hint from the stepper (see [`StageHint`]).
    /// Default: ignored.
    fn stage_hint(&self, hint: StageHint) {
        let _ = hint;
    }
}

impl<const L: usize, S: LanedOdeSystem<L> + ?Sized> LanedOdeSystem<L> for &S {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn rhs(&self, t: f64, y: &[[f64; L]], dydt: &mut [[f64; L]]) {
        (**self).rhs(t, y, dydt)
    }

    fn stage_hint(&self, hint: StageHint) {
        (**self).stage_hint(hint)
    }
}

/// Adapter implementing [`LanedOdeSystem`] from a closure (testing aid).
pub struct FnLanedSystem<const L: usize, F> {
    dim: usize,
    f: F,
}

impl<const L: usize, F: Fn(f64, &[[f64; L]], &mut [[f64; L]])> FnLanedSystem<L, F> {
    /// Wrap a closure as a lane-batched ODE system of the given dimension.
    pub fn new(dim: usize, f: F) -> Self {
        FnLanedSystem { dim, f }
    }
}

impl<const L: usize, F: Fn(f64, &[[f64; L]], &mut [[f64; L]])> LanedOdeSystem<L>
    for FnLanedSystem<L, F>
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn rhs(&self, t: f64, y: &[[f64; L]], dydt: &mut [[f64; L]]) {
        (self.f)(t, y, dydt)
    }
}

/// Adapter implementing [`OdeSystem`] from a closure.
///
/// # Examples
///
/// ```
/// use ark_ode::{FnSystem, OdeSystem};
/// // dy/dt = -y
/// let sys = FnSystem::new(1, |_t, y, dydt| dydt[0] = -y[0]);
/// let mut out = [0.0];
/// sys.rhs(0.0, &[2.0], &mut out);
/// assert_eq!(out[0], -2.0);
/// ```
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(f64, &[f64], &mut [f64])> FnSystem<F> {
    /// Wrap a closure as an ODE system of the given dimension.
    pub fn new(dim: usize, f: F) -> Self {
        FnSystem { dim, f }
    }
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for FnSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        (self.f)(t, y, dydt)
    }
}

impl<S: OdeSystem + ?Sized> OdeSystem for &S {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        (**self).rhs(t, y, dydt)
    }

    fn stage_hint(&self, hint: StageHint) {
        (**self).stage_hint(hint)
    }

    fn jacobian(&self, t: f64, y: &[f64], jac: &mut [f64]) -> bool {
        (**self).jacobian(t, y, jac)
    }
}

/// A linear time-invariant system `dy/dt = A·y + b(t)` stored densely.
///
/// Used by `ark-spice` for GmC netlists and by tests as a reference system
/// with a known solution.
pub struct LinearSystem<B> {
    /// Row-major `dim × dim` state matrix.
    a: Vec<f64>,
    dim: usize,
    /// Forcing term `b(t)`, written into the provided buffer.
    forcing: B,
}

impl<B: Fn(f64, &mut [f64])> LinearSystem<B> {
    /// Create a linear system from a row-major matrix and a forcing closure.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != dim * dim`.
    pub fn new(dim: usize, a: Vec<f64>, forcing: B) -> Self {
        assert_eq!(a.len(), dim * dim, "matrix must be dim*dim");
        LinearSystem { a, dim, forcing }
    }

    /// The matrix entry `A[i][j]`.
    pub fn a(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.dim + j]
    }
}

impl<B: Fn(f64, &mut [f64])> OdeSystem for LinearSystem<B> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        (self.forcing)(t, dydt);
        for (i, d) in dydt.iter_mut().enumerate().take(self.dim) {
            let row = &self.a[i * self.dim..(i + 1) * self.dim];
            let mut acc = 0.0;
            for (aij, yj) in row.iter().zip(y) {
                acc += aij * yj;
            }
            *d += acc;
        }
    }

    /// The Jacobian of a linear system is the (constant) state matrix.
    fn jacobian(&self, _t: f64, _y: &[f64], jac: &mut [f64]) -> bool {
        jac.copy_from_slice(&self.a);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_system_wraps_closure() {
        let sys = FnSystem::new(2, |_t, y: &[f64], d: &mut [f64]| {
            d[0] = y[1];
            d[1] = -y[0];
        });
        assert_eq!(sys.dim(), 2);
        let mut d = [0.0; 2];
        sys.rhs(0.0, &[1.0, 0.0], &mut d);
        assert_eq!(d, [0.0, -1.0]);
    }

    #[test]
    fn linear_system_matvec() {
        // dy/dt = [[0,1],[-2,0]] y + [0, sin(t)]
        let sys = LinearSystem::new(2, vec![0.0, 1.0, -2.0, 0.0], |t: f64, b: &mut [f64]| {
            b[0] = 0.0;
            b[1] = t.sin();
        });
        let mut d = [0.0; 2];
        sys.rhs(std::f64::consts::FRAC_PI_2, &[3.0, 4.0], &mut d);
        assert!((d[0] - 4.0).abs() < 1e-15);
        assert!((d[1] - (-6.0 + 1.0)).abs() < 1e-12);
        assert_eq!(sys.a(1, 0), -2.0);
    }

    #[test]
    #[should_panic(expected = "matrix must be dim*dim")]
    fn linear_system_checks_shape() {
        let _ = LinearSystem::new(2, vec![1.0; 3], |_t, _b: &mut [f64]| {});
    }

    #[test]
    fn linear_system_exposes_constant_jacobian() {
        let a = vec![0.0, 1.0, -2.0, -0.5];
        let sys = LinearSystem::new(2, a.clone(), |_t, b: &mut [f64]| b.fill(0.0));
        let mut jac = [f64::NAN; 4];
        assert!(sys.jacobian(7.0, &[1.0, 2.0], &mut jac));
        assert_eq!(jac.as_slice(), a.as_slice());
        // The &S forwarding impl must pass the override through.
        let r = &sys;
        let mut jac2 = [f64::NAN; 4];
        assert!(OdeSystem::jacobian(&r, 0.0, &[0.0, 0.0], &mut jac2));
        assert_eq!(jac2, jac);
        // Default impl reports "no analytic Jacobian".
        let f = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = y[0]);
        assert!(!f.jacobian(0.0, &[1.0], &mut [0.0]));
    }

    #[test]
    fn ref_forwarding() {
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = y[0]);
        let r = &sys;
        assert_eq!(OdeSystem::dim(&r), 1);
    }
}
