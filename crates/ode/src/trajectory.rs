//! Recorded solution trajectories.

/// Counters describing how an integrator produced a [`Trajectory`].
///
/// Fixed-step methods only ever accept steps; the adaptive
/// [`DormandPrince`](crate::DormandPrince) controller additionally reports
/// how many trial steps its PI controller rejected, which is the direct
/// measure of how hard the tolerance was to meet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Number of accepted integration steps.
    pub accepted: usize,
    /// Number of rejected (retried) steps — always 0 for fixed-step methods.
    pub rejected: usize,
    /// Number of right-hand-side evaluations performed.
    pub rhs_evals: usize,
    /// Number of Newton iterations performed across all step attempts —
    /// always 0 for the explicit methods, the dominant cost knob for
    /// implicit ones ([`TrBdf2`](crate::TrBdf2)).
    pub newton_iters: usize,
}

/// A time-indexed record of the state vector produced by an integrator.
///
/// Rows are strictly increasing in time. Values between samples are
/// recovered by linear interpolation, which is adequate for the dense
/// outputs produced by the fixed-step and adaptive integrators here.
///
/// Samples are stored in one flat `times.len() × dim` buffer so recording a
/// sample never allocates a fresh per-row `Vec` (amortized growth only) —
/// part of the allocation-free integrator hot path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trajectory {
    times: Vec<f64>,
    /// Row-major `len × dim` sample matrix.
    data: Vec<f64>,
    dim: usize,
    stats: SolveStats,
}

impl Trajectory {
    /// An empty trajectory.
    pub fn new() -> Self {
        Trajectory::default()
    }

    /// An empty trajectory with room for `samples` rows of width `dim`.
    pub fn with_capacity(dim: usize, samples: usize) -> Self {
        Trajectory {
            times: Vec::with_capacity(samples),
            data: Vec::with_capacity(samples * dim),
            dim: 0,
            stats: SolveStats::default(),
        }
    }

    /// Append a sample. Times must arrive in strictly increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not greater than the last recorded time, or if the
    /// state dimension changes between samples.
    pub fn push(&mut self, t: f64, state: Vec<f64>) {
        self.push_slice(t, &state);
    }

    /// Append a sample from a borrowed state — the allocation-free variant
    /// of [`Trajectory::push`] used by the integrators.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not greater than the last recorded time, or if the
    /// state dimension changes between samples.
    pub fn push_slice(&mut self, t: f64, state: &[f64]) {
        if let Some(last) = self.times.last() {
            assert!(t > *last, "trajectory times must be strictly increasing");
            assert_eq!(
                state.len(),
                self.dim,
                "state dimension changed mid-trajectory"
            );
        } else {
            self.dim = state.len();
        }
        self.times.push(t);
        self.data.extend_from_slice(state);
    }

    /// Integration statistics recorded by the producing solver (all zero for
    /// hand-built trajectories).
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Attach integration statistics (used by the solvers).
    pub fn set_stats(&mut self, stats: SolveStats) {
        self.stats = stats;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Dimension of the recorded state vectors (0 when empty).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The recorded time stamps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The state at sample index `i`.
    pub fn state(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The final `(time, state)` sample, if any.
    pub fn last(&self) -> Option<(f64, &[f64])> {
        self.times.last().map(|t| (*t, self.state(self.len() - 1)))
    }

    /// Time series of component `var` as `(t, value)` pairs.
    pub fn series(&self, var: usize) -> Vec<(f64, f64)> {
        self.times
            .iter()
            .enumerate()
            .map(|(i, t)| (*t, self.state(i)[var]))
            .collect()
    }

    /// Linearly interpolated state at time `t`.
    ///
    /// Clamps to the first/last sample outside the recorded range.
    ///
    /// # Panics
    ///
    /// Panics on an empty trajectory.
    pub fn at(&self, t: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        self.at_into(t, &mut out);
        out
    }

    /// [`Trajectory::at`] into a caller-provided buffer — the
    /// allocation-free form used by hot readout loops (e.g. the laned CNN
    /// convergence scan, which probes hundreds of points per lane group).
    /// Produces bit-identical values to [`Trajectory::at`].
    ///
    /// # Panics
    ///
    /// Panics on an empty trajectory or an undersized buffer.
    pub fn at_into(&self, t: f64, out: &mut [f64]) {
        assert!(!self.is_empty(), "cannot sample an empty trajectory");
        let out = &mut out[..self.dim];
        if t <= self.times[0] {
            out.copy_from_slice(self.state(0));
            return;
        }
        if t >= *self.times.last().expect("nonempty") {
            out.copy_from_slice(self.state(self.len() - 1));
            return;
        }
        let idx = match self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite"))
        {
            Ok(i) => {
                out.copy_from_slice(self.state(i));
                return;
            }
            Err(i) => i,
        };
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let w = (t - t0) / (t1 - t0);
        for ((o, a), b) in out.iter_mut().zip(self.state(idx - 1)).zip(self.state(idx)) {
            *o = a + w * (b - a);
        }
    }

    /// Linearly interpolated value of component `var` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics on an empty trajectory or out-of-range `var`.
    pub fn value_at(&self, t: f64, var: usize) -> f64 {
        self.at(t)[var]
    }

    /// Maximum of component `var` over `[t0, t1]`, returned as `(t, value)`.
    ///
    /// Considers recorded samples inside the window plus the interpolated
    /// endpoints.
    ///
    /// # Panics
    ///
    /// Panics on an empty trajectory.
    pub fn peak_in_window(&self, var: usize, t0: f64, t1: f64) -> (f64, f64) {
        let mut best = (t0, self.value_at(t0, var));
        for (i, t) in self.times.iter().enumerate() {
            let v = self.state(i)[var];
            if *t >= t0 && *t <= t1 && v > best.1 {
                best = (*t, v);
            }
        }
        let end = (t1, self.value_at(t1, var));
        if end.1 > best.1 {
            best = end;
        }
        best
    }

    /// Resample component `var` at `n` evenly spaced points across `[t0, t1]`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the trajectory is empty.
    pub fn resample(&self, var: usize, t0: f64, t1: f64, n: usize) -> Vec<f64> {
        assert!(n >= 2, "need at least two sample points");
        (0..n)
            .map(|i| {
                let t = t0 + (t1 - t0) * (i as f64) / ((n - 1) as f64);
                self.value_at(t, var)
            })
            .collect()
    }

    /// Iterate over `(time, state)` samples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[f64])> {
        self.times
            .iter()
            .copied()
            .zip(self.data.chunks_exact(self.dim.max(1)))
    }
}

/// Root-mean-squared error between component `var_a` of `a` and `var_b` of
/// `b`, resampled at `n` points over `[t0, t1]`, normalized by the RMS of
/// the reference `a` (so 0.01 means 1% error, as in the paper's §4.5
/// empirical validation).
///
/// # Panics
///
/// Panics if either trajectory is empty or `n < 2`.
pub fn relative_rmse(
    a: &Trajectory,
    var_a: usize,
    b: &Trajectory,
    var_b: usize,
    t0: f64,
    t1: f64,
    n: usize,
) -> f64 {
    let xs = a.resample(var_a, t0, t1, n);
    let ys = b.resample(var_b, t0, t1, n);
    let mut err = 0.0;
    let mut norm = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        err += (x - y) * (x - y);
        norm += x * x;
    }
    if norm == 0.0 {
        return if err == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (err / norm).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Trajectory {
        let mut tr = Trajectory::new();
        for i in 0..=10 {
            let t = i as f64;
            tr.push(t, vec![t * 2.0, -t]);
        }
        tr
    }

    #[test]
    fn push_and_basic_accessors() {
        let tr = ramp();
        assert_eq!(tr.len(), 11);
        assert_eq!(tr.dim(), 2);
        assert!(!tr.is_empty());
        assert_eq!(tr.state(1), &[2.0, -1.0]);
        assert_eq!(tr.last().unwrap().0, 10.0);
        assert_eq!(tr.times()[0], 0.0);
    }

    #[test]
    fn push_slice_matches_push() {
        let mut a = Trajectory::new();
        let mut b = Trajectory::new();
        for i in 0..5 {
            let t = i as f64;
            a.push(t, vec![t, 2.0 * t]);
            b.push_slice(t, &[t, 2.0 * t]);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn stats_default_zero_and_settable() {
        let mut tr = ramp();
        assert_eq!(tr.stats(), SolveStats::default());
        tr.set_stats(SolveStats {
            accepted: 3,
            rejected: 1,
            rhs_evals: 12,
            newton_iters: 0,
        });
        assert_eq!(tr.stats().rejected, 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_rejects_nonmonotonic_time() {
        let mut tr = ramp();
        tr.push(5.0, vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimension changed")]
    fn push_rejects_dim_change() {
        let mut tr = ramp();
        tr.push(11.0, vec![0.0]);
    }

    #[test]
    fn interpolation_is_linear() {
        let tr = ramp();
        assert_eq!(tr.value_at(2.5, 0), 5.0);
        assert_eq!(tr.value_at(2.5, 1), -2.5);
        // Exact sample hit.
        assert_eq!(tr.value_at(3.0, 0), 6.0);
        // Clamping.
        assert_eq!(tr.value_at(-1.0, 0), 0.0);
        assert_eq!(tr.value_at(99.0, 0), 20.0);
    }

    #[test]
    fn series_extracts_component() {
        let tr = ramp();
        let s = tr.series(1);
        assert_eq!(s[3], (3.0, -3.0));
    }

    #[test]
    fn peak_in_window_finds_max() {
        let mut tr = Trajectory::new();
        for i in 0..=100 {
            let t = i as f64 / 100.0;
            // Bump centered at 0.3.
            let v = (-(t - 0.3) * (t - 0.3) * 100.0).exp();
            tr.push(t + 1e-12, vec![v]);
        }
        let (t_peak, v_peak) = tr.peak_in_window(0, 0.0, 1.0);
        assert!((t_peak - 0.3).abs() < 0.02);
        assert!(v_peak > 0.99);
        // Window excluding the bump.
        let (_, v2) = tr.peak_in_window(0, 0.6, 1.0);
        assert!(v2 < 0.5);
    }

    #[test]
    fn resample_endpoints() {
        let tr = ramp();
        let r = tr.resample(0, 0.0, 10.0, 5);
        assert_eq!(r, vec![0.0, 5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn relative_rmse_zero_for_identical() {
        let tr = ramp();
        assert_eq!(relative_rmse(&tr, 0, &tr, 0, 0.0, 10.0, 50), 0.0);
    }

    #[test]
    fn relative_rmse_scales() {
        let a = ramp();
        let mut b = Trajectory::new();
        for i in 0..=10 {
            let t = i as f64;
            b.push(t, vec![t * 2.0 * 1.01]); // 1% off everywhere
        }
        let e = relative_rmse(&a, 0, &b, 0, 1.0, 10.0, 100);
        assert!((e - 0.01).abs() < 1e-3, "rmse {e}");
    }

    #[test]
    fn iter_yields_pairs() {
        let tr = ramp();
        let v: Vec<_> = tr.iter().collect();
        assert_eq!(v.len(), 11);
        assert_eq!(v[0].0, 0.0);
        assert_eq!(v[10].1, &[20.0, -10.0]);
    }
}
