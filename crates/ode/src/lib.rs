//! # ark-ode: transient simulation substrate for Ark
//!
//! The Ark dynamical-system compiler (paper §5) lowers a dynamical graph to
//! a system of differential equations; this crate integrates those systems.
//! It provides:
//!
//! * [`OdeSystem`] — the system interface ([`FnSystem`] and [`LinearSystem`]
//!   adapters included);
//! * [`Rk4`], [`Euler`] — fixed-step explicit integrators;
//! * [`DormandPrince`] — adaptive 5(4) embedded pair with PI step control
//!   and rejected-step accounting ([`SolveStats`]);
//! * [`OdeWorkspace`] — reusable integration buffers: every solver offers an
//!   `integrate_with` variant whose hot loop performs zero per-step
//!   allocations, the form the `ark-sim` ensemble engine runs per worker;
//! * [`LanedOdeSystem`] / [`LaneWorkspace`] — the lane-batched
//!   (struct-of-arrays) siblings: [`Rk4::integrate_lanes_with`] and
//!   [`Euler::integrate_lanes_with`] step `L` ensemble instances in
//!   lockstep, bit-identical per lane to the scalar path (the adaptive
//!   solver deliberately has no laned form — see [`DormandPrince`]);
//! * [`Trajectory`] — recorded solutions (flat sample storage) with
//!   interpolation, windows, and resampling (observation windows for PUF
//!   responses, §2.2);
//! * analysis helpers: [`convergence_time`], [`ensemble_stats`] (mismatch
//!   envelopes, Fig. 4c/4d), [`relative_rmse`] (SPICE validation, §4.5),
//!   and phase utilities for oscillator readout (§7.2).
//!
//! # Examples
//!
//! ```
//! use ark_ode::{FnSystem, Rk4};
//!
//! // dV/dt = -V/RC with RC = 1.
//! let sys = FnSystem::new(1, |_t, y, dydt| dydt[0] = -y[0]);
//! let tr = Rk4 { dt: 1e-3 }.integrate(&sys, 0.0, &[1.0], 1.0, 10)?;
//! let v_end = tr.last().unwrap().1[0];
//! assert!((v_end - (-1.0f64).exp()).abs() < 1e-9);
//! # Ok::<(), ark_ode::SolveError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod integrate;
pub mod system;
pub mod trajectory;

pub use analysis::{
    convergence_time, convergence_time_all, ensemble_stats, is_steady, phase_distance, wrap_phase,
    EnsembleStats,
};
pub use integrate::{DormandPrince, Euler, LaneWorkspace, OdeWorkspace, Rk4, SolveError};
pub use system::{FnLanedSystem, FnSystem, LanedOdeSystem, LinearSystem, OdeSystem};
pub use trajectory::{relative_rmse, SolveStats, Trajectory};
