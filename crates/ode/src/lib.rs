//! # ark-ode: transient simulation substrate for Ark
//!
//! The Ark dynamical-system compiler (paper §5) lowers a dynamical graph to
//! a system of differential equations; this crate integrates those systems.
//! It provides:
//!
//! * [`Solver`] — the unified solver trait: one `solve` entry point over
//!   scalar (`f64`) and lane-batched (`[f64; L]`) integration, assembled
//!   from a [`Stepper`] (Butcher-stage arithmetic written once over both
//!   widths) and a [`StepControl`] policy ([`Fixed`], [`Adaptive`] PI
//!   control, lane-voting [`VotingAdaptive`]) — see [`solver`];
//! * [`Observer`] — streaming readout of a run: [`Strided`] /
//!   [`DenseRecorder`] trajectory recording (bit-identical to the
//!   pre-redesign paths), allocation-free [`FinalState`], and in-loop
//!   [`Probe`]s — see [`observe`];
//! * [`OdeSystem`] — the system interface ([`FnSystem`] and [`LinearSystem`]
//!   adapters included);
//! * [`Rk4`], [`Euler`] — fixed-step explicit solver configurations;
//! * [`DormandPrince`] — adaptive 5(4) embedded pair with PI step control
//!   and rejected-step accounting ([`SolveStats`]);
//!   [`VotingDormandPrince`] — its opt-in lane-batched voting form;
//! * [`TrBdf2`] — L-stable implicit TR-BDF2 with a damped-Newton inner loop
//!   over a factor-once LU ([`linalg`]), adaptive via its embedded error
//!   estimate or fixed-grid, consuming analytic Jacobians through
//!   [`OdeSystem::jacobian`] (finite-difference fallback) — the stepper for
//!   stiff designs where explicit methods need `h ≲ 1/λ` — see [`implicit`];
//! * [`OdeWorkspace`] — reusable integration buffers: every solver offers an
//!   `integrate_with` variant whose hot loop performs zero per-step
//!   allocations, the form the `ark-sim` ensemble engine runs per worker;
//! * [`LanedOdeSystem`] / [`LaneWorkspace`] — the lane-batched
//!   (struct-of-arrays) siblings: [`Rk4::integrate_lanes_with`] and
//!   [`Euler::integrate_lanes_with`] step `L` ensemble instances in
//!   lockstep, bit-identical per lane to the scalar path (the PI-adaptive
//!   solver deliberately has no laned form — see [`DormandPrince`]);
//! * [`Trajectory`] — recorded solutions (flat sample storage) with
//!   interpolation, windows, and resampling (observation windows for PUF
//!   responses, §2.2);
//! * analysis helpers: [`convergence_time`], [`ensemble_stats`] (mismatch
//!   envelopes, Fig. 4c/4d), [`relative_rmse`] (SPICE validation, §4.5),
//!   and phase utilities for oscillator readout (§7.2).
//!
//! # Examples
//!
//! ```
//! use ark_ode::{FnSystem, Rk4};
//!
//! // dV/dt = -V/RC with RC = 1.
//! let sys = FnSystem::new(1, |_t, y, dydt| dydt[0] = -y[0]);
//! let tr = Rk4 { dt: 1e-3 }.integrate(&sys, 0.0, &[1.0], 1.0, 10)?;
//! let v_end = tr.last().unwrap().1[0];
//! assert!((v_end - (-1.0f64).exp()).abs() < 1e-9);
//! # Ok::<(), ark_ode::SolveError>(())
//! ```

#![warn(missing_docs)]
// Unsafe code lives only in ark-expr's codegen dlopen path.
#![forbid(unsafe_code)]

pub mod analysis;
pub mod implicit;
pub mod integrate;
pub mod linalg;
pub mod observe;
pub mod solver;
pub mod system;
pub mod trajectory;

pub use analysis::{
    convergence_time, convergence_time_all, ensemble_stats, is_steady, phase_distance, wrap_phase,
    EnsembleStats,
};
pub use implicit::{NewtonCfg, TrBdf2};
pub use integrate::{DormandPrince, Euler, LaneError, Rk4, SolveError, VotingDormandPrince};
pub use observe::{DenseRecorder, FinalState, Observer, Probe, StepInfo, Strided};
pub use solver::{
    Adaptive, Dp45Stages, Elem, EmbeddedStepper, EulerStages, Fixed, LaneWorkspace, Method,
    OdeWorkspace, Rk4Stages, Session, Solver, StepControl, Stepper, SystemOver, VotingAdaptive,
    Workspace,
};
pub use system::{FnLanedSystem, FnSystem, LanedOdeSystem, LinearSystem, OdeSystem, StageHint};
pub use trajectory::{relative_rmse, SolveStats, Trajectory};
