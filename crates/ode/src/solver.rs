//! The unified solver core: one [`Solver`] trait over scalar *and*
//! lane-batched integration.
//!
//! Before this module, every integrator hand-rolled three near-identical
//! loops (`integrate`, `integrate_with`, `integrate_lanes_with`). The
//! redesign splits a solver into two orthogonal pieces:
//!
//! * a [`Stepper`] — the Butcher-tableau stage arithmetic of one method
//!   (forward Euler, classical RK4, the Dormand–Prince 5(4) embedded pair),
//!   written **once** over the [`Elem`] abstraction so the scalar (`f64`)
//!   and laned (`[f64; L]`) forms are literally the same code. Per lane,
//!   every operation matches the historical scalar loops exactly, which is
//!   what keeps the laned paths bit-identical to the scalar ones;
//! * a [`StepControl`] policy — [`Fixed`] (lockstep grid), [`Adaptive`]
//!   (the PI controller, scalar-only by the bit-identity policy), and
//!   [`VotingAdaptive`] (min-over-lanes step voting with per-lane
//!   early-exit masks — the opt-in laned adaptive mode).
//!
//! Integration is *observer-driven*: instead of baking `Trajectory`
//! recording into the loop, the drive loops report every accepted step to
//! an [`Observer`] — dense/strided trajectory
//! recording, final-state-only capture, or in-loop probes (readout programs
//! evaluating inside the laned hot loop). The historical
//! `integrate`/`integrate_with` methods survive as thin wrappers that pair
//! a solver with a [`Strided`](crate::observe::Strided) recorder.
//!
//! # Examples
//!
//! One solver type drives scalar and laned systems through the same trait:
//!
//! ```
//! use ark_ode::{FnSystem, OdeWorkspace, Rk4, Solver, Strided};
//!
//! let sys = FnSystem::new(1, |_t, y, dydt| dydt[0] = -y[0]);
//! let mut rec = Strided::every(10);
//! let stats = Rk4 { dt: 1e-3 }.solve(&sys, 0.0, &[1.0], 1.0, &mut rec, &mut OdeWorkspace::new(1))?;
//! assert_eq!(stats.accepted, 1000);
//! let tr = rec.into_trajectory();
//! assert!((tr.last().unwrap().1[0] - (-1.0f64).exp()).abs() < 1e-9);
//! # Ok::<(), ark_ode::SolveError>(())
//! ```

use crate::integrate::SolveError;
use crate::observe::{Observer, StepInfo};
use crate::system::StageHint;
use crate::trajectory::SolveStats;
use crate::{LanedOdeSystem, OdeSystem};

/// One element of a state vector: a plain scalar (`f64`, one instance) or a
/// lane bundle (`[f64; L]`, `L` independent ensemble instances advancing in
/// lockstep).
///
/// The steppers express their stage arithmetic through [`Elem::from_fn`]
/// and [`Elem::get`] so a single implementation serves both widths. For
/// `f64` these inline to the plain expression; for `[f64; L]` they become
/// the elementwise loops the compiler auto-vectorizes. Per lane the
/// operations (and their order) are identical, so laned results are
/// bit-identical to scalar ones.
pub trait Elem: Copy + 'static {
    /// Lanes carried per element (1 for `f64`).
    const WIDTH: usize;

    /// Broadcast one value across all lanes.
    fn splat(x: f64) -> Self;

    /// Lane `l`'s value.
    fn get(self, lane: usize) -> f64;

    /// Build an element lane by lane.
    fn from_fn(f: impl FnMut(usize) -> f64) -> Self;
}

impl Elem for f64 {
    const WIDTH: usize = 1;

    #[inline(always)]
    fn splat(x: f64) -> Self {
        x
    }

    #[inline(always)]
    fn get(self, _lane: usize) -> f64 {
        self
    }

    #[inline(always)]
    fn from_fn(mut f: impl FnMut(usize) -> f64) -> Self {
        f(0)
    }
}

impl<const L: usize> Elem for [f64; L] {
    const WIDTH: usize = L;

    #[inline(always)]
    fn splat(x: f64) -> Self {
        [x; L]
    }

    #[inline(always)]
    fn get(self, lane: usize) -> f64 {
        self[lane]
    }

    #[inline(always)]
    fn from_fn(f: impl FnMut(usize) -> f64) -> Self {
        std::array::from_fn(f)
    }
}

/// A first-order ODE system over element type `E` — the width-generic view
/// the drive loops integrate against.
///
/// Never implement this directly: it is blanket-implemented for every
/// [`OdeSystem`] (at `E = f64`) and every [`LanedOdeSystem<L>`] (at
/// `E = [f64; L]`), so anything the integrators accepted before the
/// redesign still works here.
pub trait SystemOver<E: Elem> {
    /// Dimension of the state vector (per lane).
    fn dim(&self) -> usize;

    /// Evaluate the right-hand side `f(t, y)` into `dydt`.
    fn rhs(&self, t: f64, y: &[E], dydt: &mut [E]);

    /// Receive a stepper scheduling hint (see [`StageHint`]).
    fn stage_hint(&self, hint: StageHint);

    /// Scalar analytic Jacobian at `(t, y)` into row-major `jac`
    /// (see [`OdeSystem::jacobian`]); `false` when unavailable.
    ///
    /// The signature is plain `f64` regardless of `E` because the implicit
    /// steppers run scalar-only (width 1); the laned blanket impl keeps the
    /// default `false`.
    fn jacobian_scalar(&self, t: f64, y: &[f64], jac: &mut [f64]) -> bool {
        let _ = (t, y, jac);
        false
    }
}

impl<S: OdeSystem + ?Sized> SystemOver<f64> for S {
    fn dim(&self) -> usize {
        OdeSystem::dim(self)
    }

    fn rhs(&self, t: f64, y: &[f64], dydt: &mut [f64]) {
        OdeSystem::rhs(self, t, y, dydt)
    }

    fn stage_hint(&self, hint: StageHint) {
        OdeSystem::stage_hint(self, hint)
    }

    fn jacobian_scalar(&self, t: f64, y: &[f64], jac: &mut [f64]) -> bool {
        OdeSystem::jacobian(self, t, y, jac)
    }
}

impl<const L: usize, S: LanedOdeSystem<L> + ?Sized> SystemOver<[f64; L]> for S {
    fn dim(&self) -> usize {
        LanedOdeSystem::dim(self)
    }

    fn rhs(&self, t: f64, y: &[[f64; L]], dydt: &mut [[f64; L]]) {
        LanedOdeSystem::rhs(self, t, y, dydt)
    }

    fn stage_hint(&self, hint: StageHint) {
        LanedOdeSystem::stage_hint(self, hint)
    }
}

/// Reusable integration buffers over element type `E`: the current state, a
/// stage scratch vector, stage-derivative vectors (up to seven for the
/// Dormand–Prince tableau), and the per-lane failure masks of the drive
/// loops.
///
/// Create one per worker/thread and pass it to any number of solve calls;
/// buffers grow on demand (never shrink), so one workspace serves systems
/// of different dimensions. Contents are fully overwritten by each call.
///
/// The historical names survive as aliases: [`OdeWorkspace`] is
/// `Workspace<f64>`, [`LaneWorkspace<L>`] is `Workspace<[f64; L]>`.
#[derive(Debug, Clone)]
pub struct Workspace<E> {
    pub(crate) y: Vec<E>,
    pub(crate) tmp: Vec<E>,
    pub(crate) k: Vec<Vec<E>>,
    /// Per-lane liveness of the current run (failed lanes stop recording
    /// and voting but keep stepping so live lanes are unaffected).
    pub(crate) alive: Vec<bool>,
    /// Per-lane first failure, reported at the same `t` the scalar path
    /// would have detected it.
    pub(crate) failed: Vec<Option<SolveError>>,
}

impl<E> Default for Workspace<E> {
    fn default() -> Self {
        Workspace {
            y: Vec::new(),
            tmp: Vec::new(),
            k: Vec::new(),
            alive: Vec::new(),
            failed: Vec::new(),
        }
    }
}

/// Reusable work buffers for the scalar integrators (`Workspace<f64>`).
pub type OdeWorkspace = Workspace<f64>;

/// Reusable work buffers for the lane-batched integrators — the
/// struct-of-arrays twin of [`OdeWorkspace`].
pub type LaneWorkspace<const L: usize> = Workspace<[f64; L]>;

impl<E: Elem> Workspace<E> {
    /// A workspace pre-sized for systems of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        let mut ws = Workspace::default();
        ws.ensure(dim, 7);
        ws
    }

    /// Grow (never shrink) to dimension `dim` with at least `stages`
    /// stage-derivative vectors.
    fn ensure(&mut self, dim: usize, stages: usize) {
        self.y.resize(dim, E::splat(0.0));
        self.tmp.resize(dim, E::splat(0.0));
        if self.k.len() < stages {
            self.k.resize_with(stages, Vec::new);
        }
        for k in &mut self.k {
            k.resize(dim, E::splat(0.0));
        }
    }

    /// Reset the per-lane failure tracking for a fresh run.
    fn reset_masks(&mut self) {
        self.alive.clear();
        self.alive.resize(E::WIDTH, true);
        self.failed.clear();
        self.failed.resize(E::WIDTH, None);
    }

    /// Lane index of the lowest lane that failed in the last run — the
    /// lane whose error the drive loop returned. `None` when every lane
    /// survived. Only meaningful right after a failed [`Solver::solve`]
    /// whose error carries a time ([`SolveError::time`] is `Some`):
    /// pre-flight errors (`BadConfig`/`UnsupportedLanes`) return before
    /// the masks are reset, so the masks still describe the *previous*
    /// run. Ensemble engines use this to attribute a lane-group failure
    /// to the instance (seed) that caused it.
    pub fn first_failed_lane(&self) -> Option<usize> {
        self.alive.iter().position(|a| !a)
    }
}

/// The stage arithmetic of one explicit Runge–Kutta method, written once
/// over [`Elem`] so the scalar and laned forms share an implementation.
///
/// A `Stepper` advances the state by one *fixed* step; embedded
/// error-estimating methods additionally implement [`EmbeddedStepper`] for
/// the adaptive controllers.
pub trait Stepper {
    /// Stage-derivative buffers required from the workspace.
    const STAGES: usize;

    /// RHS evaluations performed per step.
    const RHS_EVALS: usize;

    /// Advance `y` in place from `t` by `dt`. `tmp` and `k` come from the
    /// workspace (dimension-sized; `k` holds at least [`Stepper::STAGES`]
    /// vectors).
    fn step<E: Elem, S: SystemOver<E> + ?Sized>(
        &self,
        sys: &S,
        t: f64,
        dt: f64,
        y: &mut [E],
        tmp: &mut [E],
        k: &mut [Vec<E>],
    );
}

/// An embedded Runge–Kutta pair: trial steps with a built-in error
/// estimate, the raw material of the adaptive step controllers.
pub trait EmbeddedStepper {
    /// Stage-derivative buffers required from the workspace.
    const STAGES: usize;

    /// Fresh RHS evaluations per attempted step (FSAL reuse excluded).
    const RHS_EVALS_PER_ATTEMPT: usize;

    /// Evaluate the first stage at `(t, y)` — the FSAL priming call.
    fn prime<E: Elem, S: SystemOver<E> + ?Sized>(&self, sys: &S, t: f64, y: &[E], k: &mut [Vec<E>]);

    /// One trial step of size `h`: the higher-order candidate lands in
    /// `ytmp`, and the per-lane *sum of squared scaled error components*
    /// is returned (the controller divides by `dim` and takes the root).
    #[allow(clippy::too_many_arguments)]
    fn attempt<E: Elem, S: SystemOver<E> + ?Sized>(
        &self,
        sys: &S,
        t: f64,
        h: f64,
        y: &[E],
        ytmp: &mut [E],
        k: &mut [Vec<E>],
        atol: f64,
        rtol: f64,
    ) -> E;

    /// Rotate stage storage after an accepted step (the FSAL swap).
    fn accept<E: Elem>(&self, k: &mut [Vec<E>]);
}

/// Forward-Euler stages (one RHS evaluation per step).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EulerStages;

impl Stepper for EulerStages {
    const STAGES: usize = 1;
    const RHS_EVALS: usize = 1;

    fn step<E: Elem, S: SystemOver<E> + ?Sized>(
        &self,
        sys: &S,
        t: f64,
        dt: f64,
        y: &mut [E],
        _tmp: &mut [E],
        k: &mut [Vec<E>],
    ) {
        let n = y.len();
        let dydt = &mut k[0][..n];
        sys.rhs(t, y, dydt);
        for (yi, di) in y.iter_mut().zip(dydt.iter()) {
            let (a, d) = (*yi, *di);
            *yi = E::from_fn(|l| a.get(l) + dt * d.get(l));
        }
    }
}

/// Classical fourth-order Runge–Kutta stages.
///
/// Stages 2 and 3 evaluate at the same `t + dt/2`, which the stepper
/// reports to the system via [`StageHint::SameTimeNext`] — the fused
/// interpreter then skips even the revalidation of its time-prologue cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rk4Stages;

impl Stepper for Rk4Stages {
    const STAGES: usize = 4;
    const RHS_EVALS: usize = 4;

    fn step<E: Elem, S: SystemOver<E> + ?Sized>(
        &self,
        sys: &S,
        t: f64,
        dt: f64,
        y: &mut [E],
        tmp: &mut [E],
        k: &mut [Vec<E>],
    ) {
        let n = y.len();
        let (ka, rest) = k.split_at_mut(1);
        let (kb, rest) = rest.split_at_mut(1);
        let (kc, rest) = rest.split_at_mut(1);
        let (k1, k2, k3, k4) = (
            &mut ka[0][..n],
            &mut kb[0][..n],
            &mut kc[0][..n],
            &mut rest[0][..n],
        );
        sys.rhs(t, y, k1);
        for i in 0..n {
            let (yi, ki) = (y[i], k1[i]);
            tmp[i] = E::from_fn(|l| yi.get(l) + 0.5 * dt * ki.get(l));
        }
        sys.rhs(t + 0.5 * dt, tmp, k2);
        for i in 0..n {
            let (yi, ki) = (y[i], k2[i]);
            tmp[i] = E::from_fn(|l| yi.get(l) + 0.5 * dt * ki.get(l));
        }
        // Stage 3 reuses stage 2's evaluation time bit for bit.
        sys.stage_hint(StageHint::SameTimeNext);
        sys.rhs(t + 0.5 * dt, tmp, k3);
        for i in 0..n {
            let (yi, ki) = (y[i], k3[i]);
            tmp[i] = E::from_fn(|l| yi.get(l) + dt * ki.get(l));
        }
        sys.rhs(t + dt, tmp, k4);
        for i in 0..n {
            let (yi, k1i, k2i, k3i, k4i) = (y[i], k1[i], k2[i], k3[i], k4[i]);
            y[i] = E::from_fn(|l| {
                yi.get(l)
                    + dt / 6.0 * (k1i.get(l) + 2.0 * k2i.get(l) + 2.0 * k3i.get(l) + k4i.get(l))
            });
        }
    }
}

// Dormand–Prince coefficients.
const C: [f64; 7] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
const A: [[f64; 6]; 7] = [
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
    [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
    [
        19372.0 / 6561.0,
        -25360.0 / 2187.0,
        64448.0 / 6561.0,
        -212.0 / 729.0,
        0.0,
        0.0,
    ],
    [
        9017.0 / 3168.0,
        -355.0 / 33.0,
        46732.0 / 5247.0,
        49.0 / 176.0,
        -5103.0 / 18656.0,
        0.0,
    ],
    [
        35.0 / 384.0,
        0.0,
        500.0 / 1113.0,
        125.0 / 192.0,
        -2187.0 / 6784.0,
        11.0 / 84.0,
    ],
];
// 5th-order solution weights (same as A[6]).
const B5: [f64; 7] = [
    35.0 / 384.0,
    0.0,
    500.0 / 1113.0,
    125.0 / 192.0,
    -2187.0 / 6784.0,
    11.0 / 84.0,
    0.0,
];
// 4th-order embedded weights.
const B4: [f64; 7] = [
    5179.0 / 57600.0,
    0.0,
    7571.0 / 16695.0,
    393.0 / 640.0,
    -92097.0 / 339200.0,
    187.0 / 2100.0,
    1.0 / 40.0,
];

/// Dormand–Prince 5(4) embedded stages (FSAL: the accepted step's last
/// stage becomes the next step's first).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dp45Stages;

impl EmbeddedStepper for Dp45Stages {
    const STAGES: usize = 7;
    const RHS_EVALS_PER_ATTEMPT: usize = 6;

    fn prime<E: Elem, S: SystemOver<E> + ?Sized>(
        &self,
        sys: &S,
        t: f64,
        y: &[E],
        k: &mut [Vec<E>],
    ) {
        let n = y.len();
        sys.rhs(t, y, &mut k[0][..n]);
    }

    fn attempt<E: Elem, S: SystemOver<E> + ?Sized>(
        &self,
        sys: &S,
        t: f64,
        h: f64,
        y: &[E],
        ytmp: &mut [E],
        k: &mut [Vec<E>],
        atol: f64,
        rtol: f64,
    ) -> E {
        let n = y.len();
        for s in 1..7 {
            for i in 0..n {
                let mut acc = E::splat(0.0);
                for (j, kj) in k.iter().enumerate().take(s) {
                    let a = A[s][j];
                    if a != 0.0 {
                        let kji = kj[i];
                        acc = E::from_fn(|l| acc.get(l) + a * kji.get(l));
                    }
                }
                let yi = y[i];
                ytmp[i] = E::from_fn(|l| yi.get(l) + h * acc.get(l));
            }
            if C[s] == C[s - 1] {
                // Stages 6 and 7 share their evaluation time.
                sys.stage_hint(StageHint::SameTimeNext);
            }
            let (_, tail) = k.split_at_mut(s);
            sys.rhs(t + C[s] * h, ytmp, &mut tail[0][..n]);
        }
        // 5th-order candidate and embedded error estimate.
        let mut err = E::splat(0.0);
        for i in 0..n {
            let yi = y[i];
            let mut y5 = yi;
            let mut e = E::splat(0.0);
            for (s, ks) in k.iter().enumerate().take(7) {
                let ksi = ks[i];
                y5 = E::from_fn(|l| y5.get(l) + h * B5[s] * ksi.get(l));
                e = E::from_fn(|l| e.get(l) + h * (B5[s] - B4[s]) * ksi.get(l));
            }
            ytmp[i] = y5;
            err = E::from_fn(|l| {
                let scale = atol + rtol * yi.get(l).abs().max(y5.get(l).abs());
                let r = e.get(l) / scale;
                err.get(l) + r * r
            });
        }
        err
    }

    fn accept<E: Elem>(&self, k: &mut [Vec<E>]) {
        // FSAL: the last stage was evaluated at (t + h, y_new).
        k.swap(0, 6);
    }
}

/// A step-size policy composed with a stepper into a full solver (see
/// [`Method`]). Implementations own the drive loop: validation, the step
/// sequence, finiteness masking, and observer notification.
///
/// # Examples
///
/// The same stepper under different policies — a fixed grid and the
/// lane-voting adaptive controller:
///
/// ```
/// use ark_ode::{
///     Adaptive, Dp45Stages, Fixed, FnSystem, OdeWorkspace, Rk4Stages, StepControl, Strided,
///     VotingAdaptive,
/// };
///
/// let sys = FnSystem::new(1, |_t, y, dydt| dydt[0] = -y[0]);
/// let mut ws = OdeWorkspace::new(1);
/// let mut fixed = Strided::every(1);
/// Fixed::new(1e-3).drive(&Rk4Stages, &sys, 0.0, &[1.0], 1.0, &mut fixed, &mut ws)?;
/// let adaptive = Adaptive {
///     rtol: 1e-9,
///     atol: 1e-12,
///     h0: None,
///     h_min: 1e-14,
///     h_max: f64::INFINITY,
///     max_steps: 0,
/// };
/// let mut voted = Strided::every(1);
/// VotingAdaptive(adaptive).drive(&Dp45Stages, &sys, 0.0, &[1.0], 1.0, &mut voted, &mut ws)?;
/// let (f, v) = (fixed.into_trajectory(), voted.into_trajectory());
/// assert!((f.last().unwrap().1[0] - v.last().unwrap().1[0]).abs() < 1e-8);
/// # Ok::<(), ark_ode::SolveError>(())
/// ```
pub trait StepControl<St> {
    /// True when the drive loop supports `E::WIDTH > 1`.
    fn supports_lanes(&self) -> bool;

    /// Integrate `sys` from `(t0, y0)` to `t1`, reporting accepted steps to
    /// `obs`.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadConfig`] for invalid configuration,
    /// [`SolveError::UnsupportedLanes`] when a scalar-only policy is driven
    /// at `E::WIDTH > 1`,
    /// [`SolveError::NonFinite`] when a lane's state leaves ℝ (for laned
    /// runs, the lowest failed lane is reported), and
    /// [`SolveError::StepSizeUnderflow`] from the adaptive controllers.
    #[allow(clippy::too_many_arguments)]
    fn drive<E: Elem, S: SystemOver<E> + ?Sized, O: Observer<E>>(
        &self,
        stepper: &St,
        sys: &S,
        t0: f64,
        y0: &[E],
        t1: f64,
        obs: &mut O,
        ws: &mut Workspace<E>,
    ) -> Result<SolveStats, SolveError>;
}

/// Fixed-step control: a lockstep `ceil((t1 - t0) / dt)`-step grid shared
/// by every lane, exactly the historical `Euler`/`Rk4` loops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fixed {
    /// Step size (the effective step is shrunk so the grid lands on `t1`).
    pub dt: f64,
    /// Hard step budget; `0` means unlimited. The grid size is known up
    /// front, so a plan exceeding the budget fails with
    /// [`SolveError::MaxStepsExceeded`] before the first step.
    pub max_steps: u64,
}

impl Fixed {
    /// Fixed-step control with an unlimited step budget.
    pub fn new(dt: f64) -> Self {
        Fixed { dt, max_steps: 0 }
    }
}

/// Adaptive PI step control — the policy of the historical
/// [`DormandPrince`](crate::DormandPrince) loop.
///
/// Scalar-only by design: lockstep lanes must share one step sequence, but
/// the PI controller derives each step from the error norm of *one*
/// instance, so any shared policy changes the accepted-step grid and breaks
/// the bit-identity guarantee against the scalar path. Lane-batched
/// adaptive integration is the explicit opt-in [`VotingAdaptive`] policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adaptive {
    /// Relative error tolerance.
    pub rtol: f64,
    /// Absolute error tolerance.
    pub atol: f64,
    /// Initial step (guessed from the interval when `None`).
    pub h0: Option<f64>,
    /// Smallest step before declaring failure.
    pub h_min: f64,
    /// Largest allowed step.
    pub h_max: f64,
    /// Hard budget on step *attempts* (accepted + rejected); `0` means
    /// unlimited. Exceeding it fails the run with
    /// [`SolveError::MaxStepsExceeded`] — the third terminal condition of
    /// the adaptive loop, next to `NonFinite` and `StepSizeUnderflow`, so
    /// a pathological system cannot spin the controller forever.
    pub max_steps: u64,
}

/// Step-size *voting* control: the laned adaptive mode.
///
/// All lanes share one step sequence; each trial step is judged by the
/// **worst error norm over the live lanes**, which is equivalent to every
/// lane proposing its own next step and the group taking the minimum. A
/// lane whose state (or error estimate) leaves ℝ is masked out — it keeps
/// stepping (its NaNs stay in its own lane) but stops voting and stops
/// being recorded — so one diverging instance cannot stall the group.
///
/// **Opt-in, and deliberately not the default**: the voted step grid
/// depends on which instances share a lane group, so results depend on the
/// seeds *and the lane width* — unlike every default path, which is
/// bit-identical across widths. Results never depend on the worker count.
/// At `WIDTH == 1` voting degenerates to [`Adaptive`] exactly, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VotingAdaptive(pub Adaptive);

pub(crate) fn validate_span(t0: f64, t1: f64) -> Result<(), SolveError> {
    if t0.is_nan() || t1.is_nan() || t1 <= t0 {
        return Err(SolveError::BadConfig(format!(
            "empty interval [{t0}, {t1}]"
        )));
    }
    Ok(())
}

pub(crate) fn validate_dim(y_len: usize, dim: usize) -> Result<(), SolveError> {
    if y_len != dim {
        return Err(SolveError::BadConfig(format!(
            "initial state has {y_len} entries but the system dimension is {dim}"
        )));
    }
    Ok(())
}

impl<St: Stepper> StepControl<St> for Fixed {
    fn supports_lanes(&self) -> bool {
        true
    }

    fn drive<E: Elem, S: SystemOver<E> + ?Sized, O: Observer<E>>(
        &self,
        stepper: &St,
        sys: &S,
        t0: f64,
        y0: &[E],
        t1: f64,
        obs: &mut O,
        ws: &mut Workspace<E>,
    ) -> Result<SolveStats, SolveError> {
        if self.dt.is_nan() || self.dt <= 0.0 {
            return Err(SolveError::BadConfig(format!(
                "step dt={} must be positive",
                self.dt
            )));
        }
        validate_span(t0, t1)?;
        validate_dim(y0.len(), sys.dim())?;
        let n = y0.len();
        ws.ensure(n, St::STAGES);
        ws.reset_masks();
        let steps = ((t1 - t0) / self.dt).ceil() as usize;
        // The grid is fully known here, so the budget check is pre-flight:
        // an over-budget plan fails before any work (and before the
        // observer sees a start).
        if self.max_steps > 0 && steps as u64 > self.max_steps {
            return Err(SolveError::MaxStepsExceeded {
                t: t0,
                budget: self.max_steps,
            });
        }
        obs.start(t0, y0, Some(steps));
        let Workspace {
            y,
            tmp,
            k,
            alive,
            failed,
        } = ws;
        let y = &mut y[..n];
        y.copy_from_slice(y0);
        let dt = (t1 - t0) / steps as f64;
        let mut t = t0;
        let mut done = 0usize;
        for step in 0..steps {
            stepper.step(sys, t, dt, y, &mut tmp[..n], k);
            t = t0 + (step + 1) as f64 * dt;
            done = step + 1;
            let mut live = false;
            for l in 0..E::WIDTH {
                if !alive[l] {
                    continue;
                }
                if y.iter().all(|yi| yi.get(l).is_finite()) {
                    live = true;
                } else {
                    alive[l] = false;
                    failed[l] = Some(SolveError::NonFinite { t });
                }
            }
            if !live {
                break;
            }
            let info = StepInfo {
                index: step + 1,
                last: step + 1 == steps,
            };
            if !obs.record(t, y, info, alive) {
                break;
            }
        }
        for f in failed.iter_mut() {
            if let Some(e) = f.take() {
                return Err(e);
            }
        }
        let stats = SolveStats {
            accepted: done,
            rejected: 0,
            rhs_evals: St::RHS_EVALS * done,
            newton_iters: 0,
        };
        obs.finish(stats);
        Ok(stats)
    }
}

impl Adaptive {
    pub(crate) fn validate(
        &self,
        t0: f64,
        t1: f64,
        y_len: usize,
        dim: usize,
    ) -> Result<(), SolveError> {
        validate_span(t0, t1)?;
        validate_dim(y_len, dim)?;
        if self.rtol.is_nan() || self.rtol <= 0.0 || self.atol.is_nan() || self.atol < 0.0 {
            return Err(SolveError::BadConfig("tolerances must be positive".into()));
        }
        Ok(())
    }
}

impl<St: EmbeddedStepper> StepControl<St> for Adaptive {
    fn supports_lanes(&self) -> bool {
        false
    }

    fn drive<E: Elem, S: SystemOver<E> + ?Sized, O: Observer<E>>(
        &self,
        stepper: &St,
        sys: &S,
        t0: f64,
        y0: &[E],
        t1: f64,
        obs: &mut O,
        ws: &mut Workspace<E>,
    ) -> Result<SolveStats, SolveError> {
        if E::WIDTH > 1 {
            return Err(crate::integrate::LaneError::ScalarOnlyPolicy {
                policy: "adaptive PI controller (lockstep fixed-step-only policy)",
                width: E::WIDTH,
            }
            .into());
        }
        // One PI-controller implementation: at WIDTH == 1 the voting loop
        // degenerates to the scalar controller exactly — the vote is a
        // max over one lane, acceptance/failure checks see one lane, and
        // the NaN-masking of a single lane reports the same NonFinite the
        // scalar loop would. The pre-redesign bit-identity proptests in
        // tests/solver_observers.rs run through this delegation.
        VotingAdaptive(*self).drive(stepper, sys, t0, y0, t1, obs, ws)
    }
}

impl<St: EmbeddedStepper> StepControl<St> for VotingAdaptive {
    fn supports_lanes(&self) -> bool {
        true
    }

    fn drive<E: Elem, S: SystemOver<E> + ?Sized, O: Observer<E>>(
        &self,
        stepper: &St,
        sys: &S,
        t0: f64,
        y0: &[E],
        t1: f64,
        obs: &mut O,
        ws: &mut Workspace<E>,
    ) -> Result<SolveStats, SolveError> {
        let cfg = &self.0;
        cfg.validate(t0, t1, y0.len(), sys.dim())?;
        let n = y0.len();
        ws.ensure(n, St::STAGES);
        ws.reset_masks();
        obs.start(t0, y0, None);
        let Workspace {
            y,
            tmp,
            k,
            alive,
            failed,
        } = ws;
        let y = &mut y[..n];
        y.copy_from_slice(y0);
        let ytmp = &mut tmp[..n];
        let mut t = t0;
        let mut h = cfg.h0.unwrap_or((t1 - t0) / 100.0).min(cfg.h_max);
        let mut stats = SolveStats::default();
        stepper.prime(sys, t, y, k);
        stats.rhs_evals += 1;
        let mut err_prev: f64 = 1.0;

        'outer: while t < t1 {
            if h < cfg.h_min {
                return Err(SolveError::StepSizeUnderflow { t });
            }
            // Budget counts attempts, so rejected steps burn it too — a
            // system that keeps rejecting cannot dodge the budget.
            if cfg.max_steps > 0 && (stats.accepted + stats.rejected) as u64 >= cfg.max_steps {
                return Err(SolveError::MaxStepsExceeded {
                    t,
                    budget: cfg.max_steps,
                });
            }
            if t + h > t1 {
                h = t1 - t;
            }
            let err_e = stepper.attempt(sys, t, h, y, ytmp, k, cfg.atol, cfg.rtol);
            stats.rhs_evals += St::RHS_EVALS_PER_ATTEMPT;
            // The vote: worst error norm over the live lanes, i.e. the
            // minimum of the steps the lanes would choose individually. A
            // lane with a NaN estimate can never be stepped into tolerance
            // and exits the vote as failed.
            let mut err: f64 = 0.0;
            let mut live = false;
            for l in 0..E::WIDTH {
                if !alive[l] {
                    continue;
                }
                let el = (err_e.get(l) / n as f64).sqrt();
                if el.is_nan() {
                    alive[l] = false;
                    failed[l] = Some(SolveError::NonFinite { t });
                    continue;
                }
                live = true;
                err = err.max(el);
            }
            if !live {
                break;
            }

            if err <= 1.0 || h <= cfg.h_min * 2.0 {
                // Accept for every lane (masked lanes ride along).
                t += h;
                y.copy_from_slice(ytmp);
                let mut live = false;
                for l in 0..E::WIDTH {
                    if !alive[l] {
                        continue;
                    }
                    if y.iter().all(|yi| yi.get(l).is_finite()) {
                        live = true;
                    } else {
                        alive[l] = false;
                        failed[l] = Some(SolveError::NonFinite { t });
                    }
                }
                stats.accepted += 1;
                if !live {
                    break;
                }
                let info = StepInfo {
                    index: stats.accepted,
                    last: t >= t1,
                };
                let go_on = obs.record(t, y, info, alive);
                stepper.accept(k);
                let e = err.max(1e-10);
                let fac = 0.9 * e.powf(-0.7 / 5.0) * err_prev.powf(0.4 / 5.0);
                h = (h * fac.clamp(0.2, 5.0)).min(cfg.h_max);
                err_prev = e;
                if !go_on {
                    break 'outer;
                }
            } else {
                stats.rejected += 1;
                h *= (0.9 * err.powf(-0.2)).clamp(0.1, 1.0);
            }
        }
        for f in failed.iter_mut() {
            if let Some(e) = f.take() {
                return Err(e);
            }
        }
        obs.finish(stats);
        Ok(stats)
    }
}

/// The unified solver interface: one trait for scalar and lane-batched,
/// fixed-step and adaptive integration.
///
/// Implementations drive an [`Observer`] over the accepted steps; the
/// historical `integrate`/`integrate_with`/`integrate_lanes_with` inherent
/// methods on [`Euler`](crate::Euler), [`Rk4`](crate::Rk4), and
/// [`DormandPrince`](crate::DormandPrince) are thin wrappers that pair
/// `solve` with a [`Strided`](crate::observe::Strided) trajectory recorder.
///
/// # Examples
///
/// Observing only the final state (no trajectory allocation at all):
///
/// ```
/// use ark_ode::{FinalState, FnSystem, OdeWorkspace, Rk4, Solver};
///
/// let sys = FnSystem::new(1, |_t, y, dydt| dydt[0] = -y[0]);
/// let mut end = FinalState::new();
/// Rk4 { dt: 1e-3 }.solve(&sys, 0.0, &[1.0], 1.0, &mut end, &mut OdeWorkspace::new(1))?;
/// assert!((end.state()[0] - (-1.0f64).exp()).abs() < 1e-9);
/// # Ok::<(), ark_ode::SolveError>(())
/// ```
pub trait Solver {
    /// Integrate `sys` from `(t0, y0)` to `t1`, reporting every accepted
    /// step to `obs` and returning the run's statistics.
    ///
    /// `E` selects the width: `f64` for one instance, `[f64; L]` for `L`
    /// lockstep instances (one trajectory per lane, each bit-identical to a
    /// scalar run of that lane alone on the default policies).
    ///
    /// # Errors
    ///
    /// See [`StepControl::drive`]. Solvers whose policy is scalar-only
    /// (PI-adaptive) return [`SolveError::UnsupportedLanes`] when
    /// `E::WIDTH > 1`; probe with [`Solver::supports_lanes`].
    fn solve<E: Elem, S: SystemOver<E> + ?Sized, O: Observer<E>>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[E],
        t1: f64,
        obs: &mut O,
        ws: &mut Workspace<E>,
    ) -> Result<SolveStats, SolveError>;

    /// True when [`Solver::solve`] supports `E::WIDTH > 1`. Ensemble
    /// engines use this to fall back to scalar dispatch for lane-incapable
    /// solvers instead of failing.
    fn supports_lanes(&self) -> bool {
        true
    }
}

/// A [`Stepper`] composed with a [`StepControl`] policy — the generic
/// solver assembly. [`Euler`](crate::Euler), [`Rk4`](crate::Rk4), and
/// [`DormandPrince`](crate::DormandPrince) are ergonomic configurations of
/// this composition.
///
/// # Examples
///
/// ```
/// use ark_ode::{Fixed, FnSystem, Method, OdeWorkspace, Rk4Stages, Solver, Strided};
///
/// // Identical to `Rk4 { dt: 1e-2 }`, assembled from its parts.
/// let solver = Method { stepper: Rk4Stages, control: Fixed::new(1e-2) };
/// let sys = FnSystem::new(1, |_t, y, dydt| dydt[0] = -y[0]);
/// let mut rec = Strided::every(1);
/// solver.solve(&sys, 0.0, &[1.0], 1.0, &mut rec, &mut OdeWorkspace::new(1))?;
/// # Ok::<(), ark_ode::SolveError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Method<St, Ctl> {
    /// The stage arithmetic.
    pub stepper: St,
    /// The step-size policy.
    pub control: Ctl,
}

impl<St, Ctl: StepControl<St>> Solver for Method<St, Ctl> {
    fn solve<E: Elem, S: SystemOver<E> + ?Sized, O: Observer<E>>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[E],
        t1: f64,
        obs: &mut O,
        ws: &mut Workspace<E>,
    ) -> Result<SolveStats, SolveError> {
        self.control.drive(&self.stepper, sys, t0, y0, t1, obs, ws)
    }

    fn supports_lanes(&self) -> bool {
        self.control.supports_lanes()
    }
}

/// A solve-in-progress configuration: one system and one time interval,
/// ready to be run under any solver/observer pairing. Thin sugar over
/// [`Solver::solve`] for exploratory code that tries several solvers or
/// observers against the same setup.
///
/// # Examples
///
/// ```
/// use ark_ode::{DormandPrince, FnSystem, OdeWorkspace, Rk4, Session, Strided};
///
/// let sys = FnSystem::new(1, |_t, y, dydt| dydt[0] = -y[0]);
/// let session = Session::new(&sys, 0.0, 1.0);
/// let mut ws = OdeWorkspace::new(1);
/// let mut fixed = Strided::every(1);
/// session.run(&Rk4 { dt: 1e-3 }, &[1.0], &mut fixed, &mut ws)?;
/// let mut adaptive = Strided::every(1);
/// session.run(&DormandPrince::new(1e-9, 1e-12), &[1.0], &mut adaptive, &mut ws)?;
/// let (f, a) = (fixed.into_trajectory(), adaptive.into_trajectory());
/// assert!((f.last().unwrap().1[0] - a.last().unwrap().1[0]).abs() < 1e-8);
/// # Ok::<(), ark_ode::SolveError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Session<'a, Sys: ?Sized> {
    sys: &'a Sys,
    t0: f64,
    t1: f64,
}

impl<'a, Sys: ?Sized> Session<'a, Sys> {
    /// A session integrating `sys` over `[t0, t1]`.
    pub fn new(sys: &'a Sys, t0: f64, t1: f64) -> Self {
        Session { sys, t0, t1 }
    }

    /// Run the session under `solver`, feeding accepted steps to `obs`.
    ///
    /// # Errors
    ///
    /// See [`Solver::solve`].
    pub fn run<E: Elem, V: Solver, O: Observer<E>>(
        &self,
        solver: &V,
        y0: &[E],
        obs: &mut O,
        ws: &mut Workspace<E>,
    ) -> Result<SolveStats, SolveError>
    where
        Sys: SystemOver<E>,
    {
        solver.solve(self.sys, self.t0, y0, self.t1, obs, ws)
    }
}
