//! Trajectory analysis helpers used by the paper's experiments: steady-state
//! and convergence detection (CNN edge detection, §7.1), phase readout
//! support, and cross-trial statistics (mismatch studies, §2.4).

use crate::trajectory::Trajectory;

/// First time at which component `var` stays within `eps` of its final value
/// for the remainder of the trajectory. This is the "convergence time" used
/// to compare ideal and non-ideal CNN runs in Figure 11.
///
/// Returns `None` when the trajectory never settles (i.e. even the last
/// sample pair differs by more than `eps`) or has fewer than two samples.
pub fn convergence_time(tr: &Trajectory, var: usize, eps: f64) -> Option<f64> {
    let n = tr.len();
    if n < 2 {
        return None;
    }
    let final_v = tr.state(n - 1)[var];
    // Walk backwards to the first sample that violates the band.
    let mut settle_idx = 0;
    for i in (0..n).rev() {
        if (tr.state(i)[var] - final_v).abs() > eps {
            settle_idx = i + 1;
            break;
        }
    }
    if settle_idx >= n {
        return None;
    }
    Some(tr.times()[settle_idx])
}

/// Worst-case convergence time across all components, or `None` if any
/// component fails to settle.
pub fn convergence_time_all(tr: &Trajectory, eps: f64) -> Option<f64> {
    let mut worst: f64 = tr.times().first().copied()?;
    for v in 0..tr.dim() {
        worst = worst.max(convergence_time(tr, v, eps)?);
    }
    Some(worst)
}

/// True when every component of the last two samples changes by less than
/// `tol` per unit time — a cheap steady-state check.
pub fn is_steady(tr: &Trajectory, tol: f64) -> bool {
    let n = tr.len();
    if n < 2 {
        return false;
    }
    let dt = tr.times()[n - 1] - tr.times()[n - 2];
    if dt <= 0.0 {
        return false;
    }
    tr.state(n - 1)
        .iter()
        .zip(tr.state(n - 2))
        .all(|(a, b)| ((a - b) / dt).abs() < tol)
}

/// Per-time-point mean and standard deviation of component `var` across many
/// trajectories, resampled on `n` points over `[t0, t1]`.
///
/// This is the statistic behind Figures 4c/4d: the Gm-mismatched t-line
/// shows a much larger std-dev envelope than the Cint-mismatched one.
///
/// # Panics
///
/// Panics if `trials` is empty.
pub fn ensemble_stats(
    trials: &[Trajectory],
    var: usize,
    t0: f64,
    t1: f64,
    n: usize,
) -> EnsembleStats {
    assert!(!trials.is_empty(), "need at least one trajectory");
    let m = trials.len() as f64;
    let mut mean = vec![0.0; n];
    let mut m2 = vec![0.0; n];
    let samples: Vec<Vec<f64>> = trials
        .iter()
        .map(|tr| tr.resample(var, t0, t1, n))
        .collect();
    for s in &samples {
        for (i, v) in s.iter().enumerate() {
            mean[i] += v / m;
        }
    }
    for s in &samples {
        for (i, v) in s.iter().enumerate() {
            m2[i] += (v - mean[i]) * (v - mean[i]);
        }
    }
    let std: Vec<f64> = m2.iter().map(|x| (x / (m - 1.0).max(1.0)).sqrt()).collect();
    let times: Vec<f64> = (0..n)
        .map(|i| t0 + (t1 - t0) * i as f64 / (n - 1) as f64)
        .collect();
    EnsembleStats { times, mean, std }
}

/// Result of [`ensemble_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleStats {
    /// Resample time points.
    pub times: Vec<f64>,
    /// Mean of the ensemble at each time point.
    pub mean: Vec<f64>,
    /// Sample standard deviation at each time point.
    pub std: Vec<f64>,
}

impl EnsembleStats {
    /// Mean of the per-time-point standard deviations — a scalar summary of
    /// how much an ensemble of mismatched devices spreads.
    pub fn mean_std(&self) -> f64 {
        self.std.iter().sum::<f64>() / self.std.len() as f64
    }

    /// Maximum per-time-point standard deviation.
    pub fn max_std(&self) -> f64 {
        self.std.iter().fold(0.0_f64, |a, b| a.max(*b))
    }
}

/// Wrap a phase angle into `[0, 2π)`. Oscillator readout (§7.2) bins wrapped
/// phases against the partition centers 0 and π.
pub fn wrap_phase(phi: f64) -> f64 {
    let two_pi = std::f64::consts::TAU;
    let mut p = phi % two_pi;
    if p < 0.0 {
        p += two_pi;
    }
    p
}

/// Absolute angular distance between two phases, in `[0, π]`.
pub fn phase_distance(a: f64, b: f64) -> f64 {
    let d = (wrap_phase(a) - wrap_phase(b)).abs();
    d.min(std::f64::consts::TAU - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settling() -> Trajectory {
        // Exponential settle to 1.0.
        let mut tr = Trajectory::new();
        for i in 0..=1000 {
            let t = i as f64 / 100.0;
            tr.push(t + 1e-12, vec![1.0 - (-t).exp()]);
        }
        tr
    }

    #[test]
    fn convergence_time_of_exponential() {
        let tr = settling();
        let tc = convergence_time(&tr, 0, 0.01).unwrap();
        // 1 - e^-t within 0.01 of final: t ≈ ln(1/0.01) ≈ 4.6
        assert!((tc - 4.6).abs() < 0.2, "tc={tc}");
        // Tighter band → later convergence.
        let tc2 = convergence_time(&tr, 0, 0.001).unwrap();
        assert!(tc2 > tc);
    }

    #[test]
    fn convergence_time_none_for_oscillation() {
        let mut tr = Trajectory::new();
        for i in 0..=100 {
            let t = i as f64 / 10.0;
            tr.push(t + 1e-12, vec![t.sin()]);
        }
        // Never settles to within a tight band of the final sample forever;
        // with eps tiny, the last violation is late, but the final pair jumps.
        let tc = convergence_time(&tr, 0, 1e-6);
        // The signal keeps moving right up to the end.
        assert!(tc.is_none() || tc.unwrap() > 9.0);
    }

    #[test]
    fn convergence_time_all_components() {
        let mut tr = Trajectory::new();
        for i in 0..=100 {
            let t = i as f64 / 10.0;
            tr.push(t + 1e-12, vec![1.0 - (-t).exp(), 1.0 - (-t / 2.0).exp()]);
        }
        let all = convergence_time_all(&tr, 0.05).unwrap();
        let slow = convergence_time(&tr, 1, 0.05).unwrap();
        assert_eq!(all, slow);
    }

    #[test]
    fn is_steady_detects_flat_tail() {
        let tr = settling();
        assert!(is_steady(&tr, 0.01));
        let mut moving = Trajectory::new();
        moving.push(0.0, vec![0.0]);
        moving.push(1.0, vec![10.0]);
        assert!(!is_steady(&moving, 0.01));
        assert!(!is_steady(&Trajectory::new(), 0.01));
    }

    #[test]
    fn ensemble_stats_zero_spread_for_identical() {
        let tr = settling();
        let stats = ensemble_stats(&[tr.clone(), tr.clone(), tr], 0, 0.0, 10.0, 20);
        assert!(stats.max_std() < 1e-12);
    }

    #[test]
    fn ensemble_stats_measures_spread() {
        let mut trials = Vec::new();
        for k in 0..10 {
            let scale = 1.0 + 0.1 * k as f64; // deterministic spread
            let mut tr = Trajectory::new();
            for i in 0..=100 {
                let t = i as f64 / 10.0;
                tr.push(t + 1e-12, vec![scale * t]);
            }
            trials.push(tr);
        }
        let stats = ensemble_stats(&trials, 0, 0.0, 10.0, 11);
        // Spread grows with t.
        assert!(stats.std[10] > stats.std[1]);
        assert!(stats.mean_std() > 0.0);
        // Mean at t=10 is avg(scale)*10 = 14.5.
        assert!((stats.mean[10] - 14.5).abs() < 1e-9);
    }

    #[test]
    fn phase_helpers() {
        use std::f64::consts::PI;
        assert!((wrap_phase(-PI / 2.0) - 1.5 * PI).abs() < 1e-12);
        assert!((wrap_phase(5.0 * PI) - PI).abs() < 1e-12);
        assert!(phase_distance(0.1, -0.1) - 0.2 < 1e-12);
        assert!((phase_distance(0.0, PI) - PI).abs() < 1e-12);
        // Wrap-around distance.
        assert!(phase_distance(0.05, std::f64::consts::TAU - 0.05) - 0.1 < 1e-12);
    }
}
