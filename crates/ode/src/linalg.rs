//! Dense linear algebra shared by the implicit steppers and the SPICE
//! backend: LU decomposition with partial pivoting, with a
//! factor-once/solve-many API shaped for Newton iterations.
//!
//! The implicit TR-BDF2 stepper factors one iteration matrix per step
//! attempt and back-substitutes it many times (Newton corrections for both
//! stages plus the error filter), so [`Lu`] separates the two costs:
//! [`Lu::factor`]/[`Lu::refactor`] do the O(n³) elimination (`refactor`
//! reuses the allocation), and [`Lu::solve_into`] does O(n²)
//! back-substitution into a caller-owned buffer. `ark-spice`'s trapezoidal
//! transient solver uses the same type through its `linalg` re-export.
//!
//! All fallible operations return typed errors ([`SingularMatrix`],
//! [`DimensionMismatch`]) — there are no panicking code paths in the solve
//! API.

use std::fmt;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The entries in row-major order (`n·n` values).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the row-major entries (for bulk fills).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != dim()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut y = vec![0.0; self.n];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// `self + alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_scaled(&self, other: &Matrix, alpha: f64) -> Matrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        Matrix {
            n: self.n,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + alpha * b)
                .collect(),
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// An error from LU factorization: no usable pivot in some column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix {
    /// Pivot column at which factorization failed.
    pub column: usize,
}

impl fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for SingularMatrix {}

/// A right-hand side or solution buffer of the wrong length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionMismatch {
    /// The factored dimension.
    pub expected: usize,
    /// The length actually supplied.
    pub got: usize,
}

impl fmt::Display for DimensionMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimension mismatch: factorization is {}×{0}, got length {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for DimensionMismatch {}

/// LU factorization with partial pivoting (`PA = LU`).
///
/// Factor once, solve many: after [`Lu::factor`] (or an allocation-reusing
/// [`Lu::refactor`]), every [`Lu::solve_into`] is a cheap O(n²)
/// back-substitution.
#[derive(Debug, Clone)]
pub struct Lu {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

/// The elimination kernel shared by `factor` and `refactor`; `lu` holds the
/// matrix entries on input and the packed L/U factors on output.
fn factor_in_place(n: usize, lu: &mut [f64], perm: &mut [usize]) -> Result<(), SingularMatrix> {
    for (i, p) in perm.iter_mut().enumerate() {
        *p = i;
    }
    for k in 0..n {
        // Partial pivot.
        let mut p = k;
        let mut best = lu[k * n + k].abs();
        for i in (k + 1)..n {
            let v = lu[i * n + k].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best < 1e-300 {
            return Err(SingularMatrix { column: k });
        }
        if p != k {
            for j in 0..n {
                lu.swap(k * n + j, p * n + j);
            }
            perm.swap(k, p);
        }
        let pivot = lu[k * n + k];
        for i in (k + 1)..n {
            let f = lu[i * n + k] / pivot;
            lu[i * n + k] = f;
            for j in (k + 1)..n {
                lu[i * n + j] -= f * lu[k * n + j];
            }
        }
    }
    Ok(())
}

impl Lu {
    /// Factor a matrix.
    ///
    /// # Errors
    ///
    /// [`SingularMatrix`] when no usable pivot remains in some column.
    pub fn factor(m: &Matrix) -> Result<Lu, SingularMatrix> {
        let n = m.n;
        let mut lu = m.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        factor_in_place(n, &mut lu, &mut perm)?;
        Ok(Lu { n, lu, perm })
    }

    /// Re-factor in place, reusing this factorization's allocations (the
    /// per-step path of a Newton iteration: same structure, new entries).
    /// The dimension may differ from the previous factorization.
    ///
    /// # Errors
    ///
    /// [`SingularMatrix`] when no usable pivot remains in some column; the
    /// factorization contents are unspecified afterwards (but safe to
    /// `refactor` again).
    pub fn refactor(&mut self, m: &Matrix) -> Result<(), SingularMatrix> {
        self.n = m.n;
        self.lu.clear();
        self.lu.extend_from_slice(&m.data);
        self.perm.resize(m.n, 0);
        factor_in_place(self.n, &mut self.lu, &mut self.perm)
    }

    /// The factored dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solve `A·x = b` into a caller-owned buffer (no allocation).
    ///
    /// # Errors
    ///
    /// [`DimensionMismatch`] when `b` or `x` do not match the factored
    /// dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), DimensionMismatch> {
        let n = self.n;
        for len in [b.len(), x.len()] {
            if len != n {
                return Err(DimensionMismatch {
                    expected: n,
                    got: len,
                });
            }
        }
        // Apply permutation, then forward/back substitution.
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        for i in 1..n {
            let dot: f64 = self.lu[i * n..i * n + i]
                .iter()
                .zip(&*x)
                .map(|(l, xj)| l * xj)
                .sum();
            x[i] -= dot;
        }
        for i in (0..n).rev() {
            let dot: f64 = self.lu[i * n + i + 1..(i + 1) * n]
                .iter()
                .zip(&x[i + 1..])
                .map(|(l, xj)| l * xj)
                .sum();
            x[i] = (x[i] - dot) / self.lu[i * n + i];
        }
        Ok(())
    }

    /// Solve `A·x = b`, allocating the solution vector.
    ///
    /// # Errors
    ///
    /// [`DimensionMismatch`] when `b.len()` does not match the factored
    /// dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, DimensionMismatch> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let m = Matrix::identity(3);
        let lu = Lu::factor(&m).unwrap();
        assert_eq!(lu.solve(&[1.0, 2.0, 3.0]).unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_system() {
        // [[2,1],[1,3]] x = [3,5] → x = [0.8, 1.4]
        let mut m = Matrix::zeros(2);
        m[(0, 0)] = 2.0;
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        m[(1, 1)] = 3.0;
        let lu = Lu::factor(&m).unwrap();
        let x = lu.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0,1],[1,0]] requires a row swap.
        let mut m = Matrix::zeros(2);
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        let lu = Lu::factor(&m).unwrap();
        let x = lu.solve(&[7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let mut m = Matrix::zeros(2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 2.0;
        m[(1, 0)] = 2.0;
        m[(1, 1)] = 4.0;
        assert_eq!(Lu::factor(&m).unwrap_err(), SingularMatrix { column: 1 });
    }

    #[test]
    fn near_singular_pivot_is_an_error_not_garbage() {
        // After eliminating column 0 the remaining pivot is ~1e-320 —
        // far below any representable conditioning. The factorization must
        // report SingularMatrix instead of dividing through and returning
        // inf/NaN solutions. Regression test for the Newton reuse path,
        // where the iteration matrix I - d·h·J can pass through singular as
        // h grows.
        let mut m = Matrix::zeros(2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        m[(1, 1)] = 1.0 + 1e-320;
        assert_eq!(Lu::factor(&m).unwrap_err(), SingularMatrix { column: 1 });
        // refactor must report the same error, and recover on good input.
        let mut lu = Lu::factor(&Matrix::identity(2)).unwrap();
        assert_eq!(lu.refactor(&m).unwrap_err(), SingularMatrix { column: 1 });
        lu.refactor(&Matrix::identity(2)).unwrap();
        assert_eq!(lu.solve(&[5.0, 6.0]).unwrap(), vec![5.0, 6.0]);
    }

    #[test]
    fn solve_rejects_wrong_dimension() {
        let lu = Lu::factor(&Matrix::identity(3)).unwrap();
        assert_eq!(
            lu.solve(&[1.0, 2.0]).unwrap_err(),
            DimensionMismatch {
                expected: 3,
                got: 2
            }
        );
        let mut short = [0.0; 2];
        assert!(lu.solve_into(&[1.0, 2.0, 3.0], &mut short).is_err());
    }

    #[test]
    fn refactor_matches_factor_and_reuses_allocation() {
        let mut a = Matrix::zeros(2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let mut b = Matrix::zeros(2);
        b[(0, 0)] = 4.0;
        b[(0, 1)] = -1.0;
        b[(1, 0)] = 0.5;
        b[(1, 1)] = 2.0;
        let mut lu = Lu::factor(&a).unwrap();
        lu.refactor(&b).unwrap();
        let fresh = Lu::factor(&b).unwrap();
        let rhs = [1.0, -2.0];
        assert_eq!(lu.solve(&rhs).unwrap(), fresh.solve(&rhs).unwrap());
    }

    #[test]
    fn matvec_and_add_scaled() {
        let mut m = Matrix::zeros(2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 2.0;
        m[(1, 1)] = 3.0;
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 3.0]);
        let s = m.add_scaled(&Matrix::identity(2), 10.0);
        assert_eq!(s[(0, 0)], 11.0);
        assert_eq!(s[(1, 1)], 13.0);
        assert_eq!(s[(0, 1)], 2.0);
    }

    #[test]
    fn random_roundtrip() {
        // Deterministic pseudo-random matrix; verify A·solve(b) == b.
        let n = 12;
        let mut m = Matrix::zeros(n);
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = next();
            }
            m[(i, i)] += 4.0; // diagonally dominant → nonsingular
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let lu = Lu::factor(&m).unwrap();
        let x = lu.solve(&b).unwrap();
        let back = m.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }
}
