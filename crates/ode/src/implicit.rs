//! The implicit TR-BDF2 solver: one trapezoidal half-stage chained with a
//! BDF2 half-stage, both solved by a damped Newton iteration over a shared
//! LU-factored iteration matrix.
//!
//! TR-BDF2 (Bank et al., the method behind SPICE-class transient engines;
//! embedded-error form after Hosea & Shampine) is L-stable, second order,
//! and one-leg: both stages solve a system with the *same* matrix
//! `M = I − d·h·J`, so each step attempt factors once
//! ([`crate::linalg::Lu::refactor`]) and back-substitutes many times —
//! Newton corrections for both stages plus the stiffness filter on the
//! embedded error estimate.
//!
//! Where the explicit steppers ([`crate::Rk4`], [`crate::DormandPrince`])
//! need `h ≲ 1/λ` for the fastest eigenvalue λ no matter how slowly the
//! solution moves, [`TrBdf2`] picks its step from the solution's *accuracy*
//! alone — the decisive difference on stiff designs (Van der Pol at
//! μ = 1000, Robertson kinetics, charge-transfer dynamics) where λ·(span)
//! is 10⁶ and up.
//!
//! The Jacobian comes from [`OdeSystem::jacobian`] when the system provides
//! one (`ark-core` compiled systems lower it from the value DAG by
//! forward-mode differentiation) and from internal forward finite
//! differences otherwise. Either way the solver composes like every other
//! one: it implements [`Solver`], streams to observers, and runs under
//! `Ensemble::run(..)` — scalar-only (`supports_lanes() == false`), so the
//! ensemble engine dispatches it per instance.
//!
//! # Examples
//!
//! A stiff linear decay that RK4 at the same step count would send to
//! infinity:
//!
//! ```
//! use ark_ode::{LinearSystem, TrBdf2};
//!
//! // dy/dt = -1e4 y, h = 0.05 → RK4's growth factor per step is huge;
//! // TR-BDF2 is L-stable and damps it monotonically.
//! let sys = LinearSystem::new(1, vec![-1e4], |_t, b: &mut [f64]| b[0] = 0.0);
//! let tr = TrBdf2::fixed(0.05).integrate(&sys, 0.0, &[1.0], 1.0, 1)?;
//! let end = tr.last().unwrap().1[0];
//! assert!(end.abs() < 1e-6, "L-stable decay, got {end}");
//! # Ok::<(), ark_ode::SolveError>(())
//! ```

use crate::integrate::{LaneError, SolveError};
use crate::linalg::{Lu, Matrix};
use crate::observe::Strided;
use crate::observe::{Observer, StepInfo};
use crate::solver::Workspace;
use crate::solver::{validate_dim, validate_span, Adaptive, Elem, Fixed, Solver, SystemOver};
use crate::system::OdeSystem;
use crate::trajectory::{SolveStats, Trajectory};

/// γ = 2 − √2: the trapezoidal sub-step fraction that makes both TR-BDF2
/// stages share one iteration matrix (and the method L-stable).
const GAMMA: f64 = 2.0 - std::f64::consts::SQRT_2;
/// d = γ/2: the implicit weight of both stages; the iteration matrix is
/// `M = I − d·h·J`.
const D: f64 = GAMMA / 2.0;

/// Configuration of the damped Newton iteration inside [`TrBdf2`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonCfg {
    /// Maximum Newton iterations per stage before the step attempt is
    /// declared failed (adaptive control then retries with `h/4`).
    pub max_iters: usize,
    /// Convergence threshold on the scaled correction norm
    /// `rms(Δᵢ / (atol + rtol·|uᵢ|))` — the iteration stops once the last
    /// correction moved the iterate by less than `tol` tolerance units.
    pub tol: f64,
    /// Maximum step-halvings of the line search within one iteration when
    /// the full Newton step increases the residual norm.
    pub max_halvings: usize,
}

impl Default for NewtonCfg {
    fn default() -> Self {
        NewtonCfg {
            max_iters: 8,
            tol: 0.03,
            max_halvings: 4,
        }
    }
}

/// The TR-BDF2 implicit solver, composed with a step-control policy `C`
/// ([`Adaptive`] embedded-error control or a [`Fixed`] grid).
///
/// Construct with [`TrBdf2::new`] (adaptive) or [`TrBdf2::fixed`]; both
/// fields are public for finer control (initial step, step bounds, Newton
/// budget). See the [module docs](self) for the method and when to prefer
/// it over the explicit solvers.
///
/// # Examples
///
/// Van der Pol at μ = 1000 — the classic stiff benchmark:
///
/// ```
/// use ark_ode::{FnSystem, TrBdf2};
///
/// let mu = 1000.0;
/// let vdp = FnSystem::new(2, move |_t, y: &[f64], d: &mut [f64]| {
///     d[0] = y[1];
///     d[1] = mu * ((1.0 - y[0] * y[0]) * y[1]) - y[0];
/// });
/// let tr = TrBdf2::new(1e-6, 1e-9).integrate(&vdp, 0.0, &[2.0, 0.0], 1.0, 1)?;
/// let stats = tr.stats();
/// assert!(stats.accepted < 500, "stiffness-insensitive step count");
/// # Ok::<(), ark_ode::SolveError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrBdf2<C = Adaptive> {
    /// The step-size policy.
    pub control: C,
    /// The inner Newton iteration's budget and tolerances.
    pub newton: NewtonCfg,
}

impl TrBdf2<Adaptive> {
    /// Adaptive TR-BDF2 with the given tolerances (same controller bounds
    /// as [`crate::DormandPrince::new`]).
    pub fn new(rtol: f64, atol: f64) -> Self {
        TrBdf2 {
            control: Adaptive {
                rtol,
                atol,
                h0: None,
                h_min: 1e-14,
                h_max: f64::INFINITY,
                max_steps: 0,
            },
            newton: NewtonCfg::default(),
        }
    }
}

impl TrBdf2<Fixed> {
    /// Fixed-grid TR-BDF2 with step `dt` (shrunk to land exactly on `t1`).
    ///
    /// There is no error control: every step must converge or the solve
    /// fails with [`SolveError::NewtonDivergence`]. Newton corrections are
    /// scaled with rtol `1e-6` / atol `1e-9`.
    pub fn fixed(dt: f64) -> Self {
        TrBdf2 {
            control: Fixed::new(dt),
            newton: NewtonCfg::default(),
        }
    }
}

impl<C> TrBdf2<C> {
    /// Replace the Newton configuration.
    pub fn with_newton(mut self, newton: NewtonCfg) -> Self {
        self.newton = newton;
        self
    }

    /// Integrate and record every `stride`-th accepted step (ergonomic
    /// wrapper pairing [`Solver::solve`] with a [`Strided`] recorder, like
    /// the explicit solvers' `integrate`).
    ///
    /// # Errors
    ///
    /// See [`Solver::solve`].
    pub fn integrate(
        &self,
        sys: &impl OdeSystem,
        t0: f64,
        y0: &[f64],
        t1: f64,
        stride: usize,
    ) -> Result<Trajectory, SolveError>
    where
        Self: Solver,
    {
        let mut rec = Strided::every(stride);
        self.solve(sys, t0, y0, t1, &mut rec, &mut Workspace::new(y0.len()))?;
        Ok(rec.into_trajectory())
    }
}

/// Why a step attempt failed (internally recoverable under adaptive
/// control: reject and retry with a smaller step).
enum AttemptFail {
    /// The iteration matrix `I − d·h·J` had no usable pivot.
    Singular,
    /// Newton ran out of iterations or line-search halvings, or produced a
    /// non-finite residual.
    Diverged,
}

/// The per-solve engine: all buffers, the factored iteration matrix, and
/// the Newton/stage arithmetic. Scalar state (`Vec<f64>`) regardless of
/// `E` — the solver only runs at `E::WIDTH == 1`, and converts exactly via
/// `splat`/`get(0)` around the width-generic `rhs` calls.
struct Core<'a, E: Elem, S: SystemOver<E> + ?Sized> {
    sys: &'a S,
    n: usize,
    newton: NewtonCfg,
    /// Newton/error scaling tolerances.
    atol: f64,
    rtol: f64,
    rhs_evals: usize,
    newton_iters: usize,
    /// Width-generic conversion buffers for `rhs` calls.
    ye: Vec<E>,
    ke: Vec<E>,
    jac: Vec<f64>,
    m: Matrix,
    lu: Option<Lu>,
    /// `f(t, yₙ)` — FSAL: reused from the previous step's last stage.
    f_n: Vec<f64>,
    f_g: Vec<f64>,
    /// `f(t+h, yₙ₊₁)` of the accepted step; becomes the next `f_n`.
    f_new: Vec<f64>,
    y_g: Vec<f64>,
    y_new: Vec<f64>,
    /// Constant part of the current stage's residual.
    base: Vec<f64>,
    /// Newton iterate and trial iterate.
    u: Vec<f64>,
    u_try: Vec<f64>,
    /// Current residual / RHS buffer for the linear solve.
    r: Vec<f64>,
    delta: Vec<f64>,
    ftmp: Vec<f64>,
    err_vec: Vec<f64>,
}

/// Evaluate `f(t, y)` through the width-generic system (exact at width 1).
fn eval_rhs<E: Elem, S: SystemOver<E> + ?Sized>(
    sys: &S,
    t: f64,
    y: &[f64],
    out: &mut [f64],
    ye: &mut [E],
    ke: &mut [E],
    evals: &mut usize,
) {
    for (e, &v) in ye.iter_mut().zip(y) {
        *e = E::splat(v);
    }
    sys.rhs(t, ye, ke);
    for (o, k) in out.iter_mut().zip(ke.iter()) {
        *o = k.get(0);
    }
    *evals += 1;
}

impl<'a, E: Elem, S: SystemOver<E> + ?Sized> Core<'a, E, S> {
    fn new(sys: &'a S, n: usize, newton: NewtonCfg, atol: f64, rtol: f64) -> Self {
        Core {
            sys,
            n,
            newton,
            atol,
            rtol,
            rhs_evals: 0,
            newton_iters: 0,
            ye: vec![E::splat(0.0); n],
            ke: vec![E::splat(0.0); n],
            jac: vec![0.0; n * n],
            m: Matrix::zeros(n),
            lu: None,
            f_n: vec![0.0; n],
            f_g: vec![0.0; n],
            f_new: vec![0.0; n],
            y_g: vec![0.0; n],
            y_new: vec![0.0; n],
            base: vec![0.0; n],
            u: vec![0.0; n],
            u_try: vec![0.0; n],
            r: vec![0.0; n],
            delta: vec![0.0; n],
            ftmp: vec![0.0; n],
            err_vec: vec![0.0; n],
        }
    }

    /// Evaluate `f(t, y)` into `f_n` (the priming / FSAL seed eval).
    fn prime(&mut self, t: f64, y: &[f64]) {
        eval_rhs(
            self.sys,
            t,
            y,
            &mut self.f_n,
            &mut self.ye,
            &mut self.ke,
            &mut self.rhs_evals,
        );
    }

    /// Fill `self.jac` at `(t, y)`: analytic when the system provides one,
    /// forward finite differences over the already-computed `f_n = f(t, y)`
    /// otherwise (deterministic; `n` extra rhs evaluations).
    fn jacobian_at(&mut self, t: f64, y: &[f64]) {
        if self.sys.jacobian_scalar(t, y, &mut self.jac) {
            return;
        }
        let n = self.n;
        let sqrt_eps = f64::EPSILON.sqrt();
        self.u_try.copy_from_slice(y);
        for (j, &yj) in y.iter().enumerate() {
            let delta = sqrt_eps * yj.abs().max(1.0);
            self.u_try[j] = yj + delta;
            eval_rhs(
                self.sys,
                t,
                &self.u_try,
                &mut self.ftmp,
                &mut self.ye,
                &mut self.ke,
                &mut self.rhs_evals,
            );
            self.u_try[j] = y[j];
            for i in 0..n {
                self.jac[i * n + j] = (self.ftmp[i] - self.f_n[i]) / delta;
            }
        }
    }

    /// Factor `M = I − d·h·J` (Jacobian already in `self.jac`).
    fn factor(&mut self, dh: f64) -> Result<(), AttemptFail> {
        let n = self.n;
        let data = self.m.data_mut();
        for i in 0..n {
            for j in 0..n {
                let idn = if i == j { 1.0 } else { 0.0 };
                data[i * n + j] = idn - dh * self.jac[i * n + j];
            }
        }
        let ok = match &mut self.lu {
            Some(lu) => lu.refactor(&self.m).is_ok(),
            None => match Lu::factor(&self.m) {
                Ok(lu) => {
                    self.lu = Some(lu);
                    true
                }
                Err(_) => false,
            },
        };
        if ok {
            Ok(())
        } else {
            Err(AttemptFail::Singular)
        }
    }

    /// Scaled rms norm `sqrt(mean((vᵢ/(atol + rtol·|refᵢ|))²))`.
    fn scaled_rms(&self, v: &[f64], reference: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (vi, ri) in v.iter().zip(reference) {
            let s = self.atol + self.rtol * ri.abs();
            let e = vi / s;
            acc += e * e;
        }
        (acc / self.n as f64).sqrt()
    }

    /// Residual `r(u) = u − d·h·f(t, u) − base` given `f(t, u)` in `f_u`.
    fn residual_into(u: &[f64], dh: f64, f_u: &[f64], base: &[f64], r: &mut [f64]) {
        for i in 0..u.len() {
            r[i] = u[i] - dh * f_u[i] - base[i];
        }
    }

    /// Damped Newton for one stage: solve `u = base + d·h·f(t_s, u)`
    /// starting from the predictor already in `self.u`; on success `self.u`
    /// holds the root and `self.ftmp` holds `f(t_s, u)` at the root.
    fn newton_solve(&mut self, t_s: f64, dh: f64) -> Result<(), AttemptFail> {
        eval_rhs(
            self.sys,
            t_s,
            &self.u,
            &mut self.ftmp,
            &mut self.ye,
            &mut self.ke,
            &mut self.rhs_evals,
        );
        Self::residual_into(&self.u, dh, &self.ftmp, &self.base, &mut self.r);
        let mut rnorm = self.scaled_rms(&self.r, &self.u);
        if !rnorm.is_finite() {
            return Err(AttemptFail::Diverged);
        }
        let lu = self.lu.as_ref().expect("factored before newton_solve");
        for _ in 0..self.newton.max_iters {
            self.newton_iters += 1;
            // Solve M·Δ = −r.
            for ri in self.r.iter_mut() {
                *ri = -*ri;
            }
            if lu.solve_into(&self.r, &mut self.delta).is_err() {
                return Err(AttemptFail::Diverged);
            }
            // Line search: halve the update until the residual norm drops.
            let mut lambda = 1.0;
            let mut accepted = false;
            for _ in 0..=self.newton.max_halvings {
                for i in 0..self.n {
                    self.u_try[i] = self.u[i] + lambda * self.delta[i];
                }
                eval_rhs(
                    self.sys,
                    t_s,
                    &self.u_try,
                    &mut self.ftmp,
                    &mut self.ye,
                    &mut self.ke,
                    &mut self.rhs_evals,
                );
                Self::residual_into(&self.u_try, dh, &self.ftmp, &self.base, &mut self.r);
                let rnorm_try = self.scaled_rms(&self.r, &self.u_try);
                // Accept any finite decrease — or any finite residual once
                // we are inside the convergence basin (tiny corrections).
                if rnorm_try.is_finite() && (rnorm_try < rnorm || rnorm < self.newton.tol) {
                    self.u.copy_from_slice(&self.u_try);
                    rnorm = rnorm_try;
                    accepted = true;
                    break;
                }
                lambda *= 0.5;
            }
            if !accepted {
                return Err(AttemptFail::Diverged);
            }
            // Converged when the applied correction is small in tolerance
            // units.
            let mut acc = 0.0;
            for (di, ui) in self.delta.iter().zip(&self.u) {
                let s = self.atol + self.rtol * ui.abs();
                let e = lambda * di / s;
                acc += e * e;
            }
            let dnorm = (acc / self.n as f64).sqrt();
            if dnorm.is_finite() && dnorm < self.newton.tol {
                return Ok(());
            }
        }
        Err(AttemptFail::Diverged)
    }

    /// One TR-BDF2 step attempt from `(t, y)` with step `h`. On success
    /// `y_new`/`f_new` hold the candidate state and its derivative, and the
    /// returned value is the stiffness-filtered scaled error norm
    /// (`err ≤ 1` means within tolerance).
    fn attempt(&mut self, t: f64, h: f64, y: &[f64]) -> Result<f64, AttemptFail> {
        let n = self.n;
        let dh = D * h;
        self.jacobian_at(t, y);
        self.factor(dh)?;

        // Stage 1 — trapezoidal to t + γh:
        //   u − d·h·f(t+γh, u) = yₙ + d·h·fₙ, predictor u₀ = yₙ + γh·fₙ.
        for (i, &yi) in y.iter().enumerate() {
            self.base[i] = yi + dh * self.f_n[i];
            self.u[i] = yi + GAMMA * h * self.f_n[i];
        }
        self.newton_solve(t + GAMMA * h, dh)?;
        self.y_g.copy_from_slice(&self.u);
        self.f_g.copy_from_slice(&self.ftmp);

        // Stage 2 — BDF2 to t + h over {yₙ, y_γ}:
        //   u − d·h·f(t+h, u) = c₁·y_γ − c₂·yₙ,
        // with c₁ = 1/(γ(2−γ)), c₂ = (1−γ)²/(γ(2−γ)); the implicit weight
        // (1−γ)/(2−γ) equals d exactly at γ = 2−√2, so M is reused.
        let denom = GAMMA * (2.0 - GAMMA);
        let c1 = 1.0 / denom;
        let c2 = (1.0 - GAMMA) * (1.0 - GAMMA) / denom;
        for (i, &yi) in y.iter().enumerate() {
            self.base[i] = c1 * self.y_g[i] - c2 * yi;
            self.u[i] = self.y_g[i] + (1.0 - GAMMA) * h * self.f_g[i];
        }
        self.newton_solve(t + h, dh)?;
        self.y_new.copy_from_slice(&self.u);
        self.f_new.copy_from_slice(&self.ftmp);

        // Embedded error: e = h·Σ(bᵢ−b̂ᵢ)fᵢ against the 3rd-order weights,
        // passed through M⁻¹ (Hosea–Shampine) so stiff components are not
        // overestimated.
        let b1 = std::f64::consts::SQRT_2 / 4.0;
        let bh2 = 1.0 / (6.0 * GAMMA * (1.0 - GAMMA));
        let bh3 = 0.5 - GAMMA * bh2;
        let bh1 = 1.0 - bh2 - bh3;
        let (w1, w2, w3) = (b1 - bh1, b1 - bh2, D - bh3);
        for i in 0..n {
            self.r[i] = h * (w1 * self.f_n[i] + w2 * self.f_g[i] + w3 * self.f_new[i]);
        }
        let lu = self.lu.as_ref().expect("factored above");
        if lu.solve_into(&self.r, &mut self.err_vec).is_err() {
            return Err(AttemptFail::Diverged);
        }
        let mut acc = 0.0;
        for (i, &yi) in y.iter().enumerate() {
            let s = self.atol + self.rtol * yi.abs().max(self.y_new[i].abs());
            let e = self.err_vec[i] / s;
            acc += e * e;
        }
        let err = (acc / n as f64).sqrt();
        if err.is_finite() {
            Ok(err)
        } else {
            Err(AttemptFail::Diverged)
        }
    }

    /// Commit the attempted step: the candidate state becomes current and
    /// its derivative seeds the next step (FSAL).
    fn advance(&mut self, y: &mut [f64]) {
        y.copy_from_slice(&self.y_new);
        std::mem::swap(&mut self.f_n, &mut self.f_new);
    }
}

/// Reject lane widths above 1 (Newton/LU has no laned form).
fn scalar_only<E: Elem>() -> Result<(), SolveError> {
    if E::WIDTH > 1 {
        return Err(LaneError::ScalarOnlyPolicy {
            policy: "TR-BDF2 implicit stepper (Newton/LU is scalar-only)",
            width: E::WIDTH,
        }
        .into());
    }
    Ok(())
}

/// Copy a scalar state into the width-generic observer buffer.
fn to_elems<E: Elem>(y: &[f64], ye: &mut [E]) {
    for (e, &v) in ye.iter_mut().zip(y) {
        *e = E::splat(v);
    }
}

impl Solver for TrBdf2<Adaptive> {
    fn solve<E: Elem, S: SystemOver<E> + ?Sized, O: Observer<E>>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[E],
        t1: f64,
        obs: &mut O,
        _ws: &mut Workspace<E>,
    ) -> Result<SolveStats, SolveError> {
        scalar_only::<E>()?;
        let cfg = &self.control;
        cfg.validate(t0, t1, y0.len(), sys.dim())?;
        let n = y0.len();
        let mut y: Vec<f64> = y0.iter().map(|e| e.get(0)).collect();
        let mut ye: Vec<E> = y0.to_vec();
        let alive = vec![true; E::WIDTH];
        let mut core = Core::new(sys, n, self.newton, cfg.atol, cfg.rtol);
        obs.start(t0, y0, None);
        let mut t = t0;
        let mut h = cfg.h0.unwrap_or((t1 - t0) / 100.0).min(cfg.h_max);
        let mut stats = SolveStats::default();
        core.prime(t, &y);

        while t < t1 {
            if h < cfg.h_min {
                return Err(SolveError::StepSizeUnderflow { t });
            }
            // Same attempt-counting budget as the explicit adaptive loop
            // (`VotingAdaptive::drive`): rejected steps burn it too.
            if cfg.max_steps > 0 && (stats.accepted + stats.rejected) as u64 >= cfg.max_steps {
                return Err(SolveError::MaxStepsExceeded {
                    t,
                    budget: cfg.max_steps,
                });
            }
            if t + h > t1 {
                h = t1 - t;
            }
            match core.attempt(t, h, &y) {
                Err(_) => {
                    // Singular iteration matrix or Newton divergence: both
                    // are step-size problems for an L-stable method.
                    stats.rejected += 1;
                    h *= 0.25;
                }
                Ok(err) if err <= 1.0 || h <= cfg.h_min * 2.0 => {
                    t += h;
                    core.advance(&mut y);
                    stats.accepted += 1;
                    if !y.iter().all(|v| v.is_finite()) {
                        return Err(SolveError::NonFinite { t });
                    }
                    to_elems(&y, &mut ye);
                    let info = StepInfo {
                        index: stats.accepted,
                        last: t >= t1,
                    };
                    let go_on = obs.record(t, &ye, info, &alive);
                    let e = err.max(1e-10);
                    let fac = 0.9 * e.powf(-1.0 / 3.0);
                    h = (h * fac.clamp(0.2, 5.0)).min(cfg.h_max);
                    if !go_on {
                        break;
                    }
                }
                Ok(err) => {
                    stats.rejected += 1;
                    h *= (0.9 * err.powf(-1.0 / 3.0)).clamp(0.1, 1.0);
                }
            }
        }
        stats.rhs_evals = core.rhs_evals;
        stats.newton_iters = core.newton_iters;
        obs.finish(stats);
        Ok(stats)
    }

    fn supports_lanes(&self) -> bool {
        false
    }
}

impl Solver for TrBdf2<Fixed> {
    fn solve<E: Elem, S: SystemOver<E> + ?Sized, O: Observer<E>>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[E],
        t1: f64,
        obs: &mut O,
        _ws: &mut Workspace<E>,
    ) -> Result<SolveStats, SolveError> {
        scalar_only::<E>()?;
        let dt = self.control.dt;
        if dt.is_nan() || dt <= 0.0 {
            return Err(SolveError::BadConfig(format!(
                "step dt={dt} must be positive"
            )));
        }
        validate_span(t0, t1)?;
        validate_dim(y0.len(), sys.dim())?;
        let n = y0.len();
        let mut y: Vec<f64> = y0.iter().map(|e| e.get(0)).collect();
        let mut ye: Vec<E> = y0.to_vec();
        let alive = vec![true; E::WIDTH];
        // Fixed control has no user tolerances; scale Newton with defaults.
        let mut core = Core::new(sys, n, self.newton, 1e-9, 1e-6);
        let steps = ((t1 - t0) / dt).ceil() as usize;
        if self.control.max_steps > 0 && steps as u64 > self.control.max_steps {
            return Err(SolveError::MaxStepsExceeded {
                t: t0,
                budget: self.control.max_steps,
            });
        }
        obs.start(t0, y0, Some(steps));
        let dt = (t1 - t0) / steps as f64;
        let mut t = t0;
        core.prime(t, &y);
        let mut done = 0usize;
        for step in 0..steps {
            if core.attempt(t, dt, &y).is_err() {
                return Err(SolveError::NewtonDivergence { t });
            }
            t = t0 + (step + 1) as f64 * dt;
            core.advance(&mut y);
            done = step + 1;
            if !y.iter().all(|v| v.is_finite()) {
                return Err(SolveError::NonFinite { t });
            }
            to_elems(&y, &mut ye);
            let info = StepInfo {
                index: step + 1,
                last: step + 1 == steps,
            };
            if !obs.record(t, &ye, info, &alive) {
                break;
            }
        }
        let stats = SolveStats {
            accepted: done,
            rejected: 0,
            rhs_evals: core.rhs_evals,
            newton_iters: core.newton_iters,
        };
        obs.finish(stats);
        Ok(stats)
    }

    fn supports_lanes(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::Rk4;
    use crate::observe::FinalState;
    use crate::solver::OdeWorkspace;
    use crate::system::{FnSystem, LinearSystem};

    fn decay(lambda: f64) -> LinearSystem<impl Fn(f64, &mut [f64])> {
        LinearSystem::new(1, vec![-lambda], |_t, b: &mut [f64]| b[0] = 0.0)
    }

    #[test]
    fn matches_exponential_decay() {
        let sys = decay(1.0);
        let tr = TrBdf2::new(1e-8, 1e-11)
            .integrate(&sys, 0.0, &[1.0], 1.0, 1)
            .unwrap();
        let end = tr.last().unwrap().1[0];
        assert!(
            (end - (-1.0_f64).exp()).abs() < 1e-6,
            "end {end} vs {}",
            (-1.0_f64).exp()
        );
    }

    #[test]
    fn fixed_grid_is_deterministic_and_orders_match() {
        let sys = decay(2.0);
        let a = TrBdf2::fixed(1e-3)
            .integrate(&sys, 0.0, &[1.0], 1.0, 1)
            .unwrap();
        let b = TrBdf2::fixed(1e-3)
            .integrate(&sys, 0.0, &[1.0], 1.0, 1)
            .unwrap();
        assert_eq!(a, b, "same grid, same bits");
        assert_eq!(a.stats().rejected, 0);
        assert!(a.stats().newton_iters >= a.stats().accepted);
    }

    #[test]
    fn analytic_jacobian_reduces_rhs_evals() {
        // LinearSystem provides an analytic Jacobian; wrapping the same
        // dynamics in FnSystem forces the finite-difference fallback, which
        // costs dim extra rhs evals per step attempt.
        let sys = decay(3.0);
        let fd = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -3.0 * y[0]);
        let solver = TrBdf2::fixed(1e-2);
        let a = solver.integrate(&sys, 0.0, &[1.0], 1.0, 1).unwrap();
        let b = solver.integrate(&fd, 0.0, &[1.0], 1.0, 1).unwrap();
        assert_eq!(a.stats().accepted, b.stats().accepted);
        assert!(
            a.stats().rhs_evals < b.stats().rhs_evals,
            "analytic {} vs fd {}",
            a.stats().rhs_evals,
            b.stats().rhs_evals
        );
        // Same trajectory to within the Newton tolerance.
        let (ea, eb) = (a.last().unwrap().1[0], b.last().unwrap().1[0]);
        assert!((ea - eb).abs() < 1e-8);
    }

    #[test]
    fn l_stable_where_rk4_explodes() {
        // y' = -λ y with λ·h = 500: far outside every explicit stability
        // region, deep inside TR-BDF2's.
        let sys = decay(1e4);
        let h = 0.05;
        let implicit = TrBdf2::fixed(h)
            .integrate(&sys, 0.0, &[1.0], 1.0, 1)
            .unwrap();
        let end = implicit.last().unwrap().1[0];
        assert!(end.is_finite() && end.abs() < 1e-6, "implicit end {end}");
        let explicit = Rk4 { dt: h }.integrate(&sys, 0.0, &[1.0], 1.0, 1);
        match explicit {
            Ok(tr) => {
                let e = tr.last().unwrap().1[0];
                assert!(e.abs() > 1.0, "rk4 should blow up, got {e}");
            }
            Err(SolveError::NonFinite { .. }) => {} // overflowed to inf
            Err(e) => panic!("unexpected rk4 failure {e}"),
        }
    }

    #[test]
    fn rejects_lanes_and_reports_scalar_only() {
        let sys = crate::system::FnLanedSystem::<4, _>::new(
            1,
            |_t, y: &[[f64; 4]], d: &mut [[f64; 4]]| {
                for l in 0..4 {
                    d[0][l] = -y[0][l];
                }
            },
        );
        let solver = TrBdf2::new(1e-6, 1e-9);
        assert!(!solver.supports_lanes());
        let mut obs = FinalState::new();
        let mut ws = Workspace::<[f64; 4]>::new(1);
        let err = solver
            .solve(&sys, 0.0, &[[1.0; 4]], 1.0, &mut obs, &mut ws)
            .unwrap_err();
        assert!(matches!(err, SolveError::UnsupportedLanes(_)));
    }

    #[test]
    fn fixed_newton_divergence_is_typed() {
        // An rhs whose Jacobian FD sees as huge and whose dynamics explode
        // faster than Newton can track at a coarse fixed step.
        let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = (y[0] * 50.0).exp());
        let res = TrBdf2::fixed(10.0).integrate(&sys, 0.0, &[1.0], 100.0, 1);
        assert!(
            matches!(
                res,
                Err(SolveError::NewtonDivergence { .. }) | Err(SolveError::NonFinite { .. })
            ),
            "got {res:?}"
        );
    }

    #[test]
    fn streams_to_observers_and_respects_early_stop() {
        use crate::observe::Observer;
        struct StopAfter(usize, usize);
        impl Observer<f64> for StopAfter {
            fn start(&mut self, _t0: f64, _y0: &[f64], _planned: Option<usize>) {}
            fn record(&mut self, _t: f64, _y: &[f64], _i: StepInfo, _a: &[bool]) -> bool {
                self.1 += 1;
                self.1 < self.0
            }
            fn finish(&mut self, _stats: SolveStats) {}
        }
        let sys = decay(1.0);
        let mut obs = StopAfter(3, 0);
        let mut ws = OdeWorkspace::new(1);
        TrBdf2::fixed(1e-2)
            .solve(&sys, 0.0, &[1.0], 1.0, &mut obs, &mut ws)
            .unwrap();
        assert_eq!(obs.1, 3, "early stop honored");
    }

    #[test]
    fn adaptive_step_count_is_stiffness_insensitive() {
        // On y' = -λ(y - cos t) the explicit adaptive pair needs O(λ) steps;
        // TR-BDF2's count is set by cos t alone.
        let lambda = 1e5;
        let sys = FnSystem::new(1, move |t: f64, y: &[f64], d: &mut [f64]| {
            d[0] = -lambda * (y[0] - t.cos())
        });
        let tr = TrBdf2::new(1e-6, 1e-9)
            .integrate(&sys, 0.0, &[0.0], 2.0, 1)
            .unwrap();
        let stats = tr.stats();
        assert!(stats.accepted + stats.rejected < 400, "steps {:?}", stats);
        // The solution rides the slow manifold y ≈ cos t.
        let end = tr.last().unwrap().1[0];
        assert!((end - 2.0_f64.cos()).abs() < 1e-3, "end {end}");
    }
}
