//! Stiff-solver demonstration: the implicit TR-BDF2 solver vs the explicit
//! Dormand–Prince pair on the Van der Pol oscillator as the stiffness
//! parameter μ grows, plus the Robertson kinetics checkpoint.
//!
//! The point of the figure: the explicit solver's step count grows linearly
//! with μ (stability-limited, h ≲ 1/μ on the slow manifold) while the
//! implicit solver's stays flat (accuracy-limited) — the compiled sparse
//! Jacobian from the fused value DAG is what makes each Newton step cheap.
//!
//! Run: `cargo run --release -p ark-bench --bin fig_stiff [decades]`

use ark_bench::trials_arg;
use ark_core::CompiledSystem;
use ark_ode::{DormandPrince, TrBdf2};
use ark_paradigms::stiff::{robertson_language, robertson_network, vdp_language, vdp_oscillator};
use ark_paradigms::DynError;

fn main() -> Result<(), DynError> {
    // μ = 10, 100, 1000, ... — one decade per "trial".
    let decades = trials_arg(3).clamp(1, 6);
    let (rtol, atol) = (1e-6, 1e-9);

    println!("== Van der Pol: implicit vs explicit step counts, t in [0, 3] ==\n");
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>10} {:>14}",
        "mu", "trbdf2 steps", "dp45 steps", "advantage", "newton", "|x_tr - x_dp|"
    );
    let lang = vdp_language();
    for d in 1..=decades {
        let mu = 10f64.powi(d as i32);
        let g = vdp_oscillator(&lang, mu)?;
        let sys = CompiledSystem::compile(&lang, &g)?;
        let ix = sys.state_index("x").expect("x is a state");
        let y0 = sys.initial_state();
        let bound = sys.bind();
        let tr = TrBdf2::new(rtol, atol).integrate(&bound, 0.0, &y0, 3.0, usize::MAX)?;
        let dp = DormandPrince::new(rtol, atol).integrate(&bound, 0.0, &y0, 3.0)?;
        let (tr_steps, dp_steps) = (
            tr.stats().accepted + tr.stats().rejected,
            dp.stats().accepted + dp.stats().rejected,
        );
        println!(
            "{:>8.0} {:>14} {:>14} {:>9.1}x {:>10} {:>14.2e}",
            mu,
            tr_steps,
            dp_steps,
            dp_steps as f64 / tr_steps.max(1) as f64,
            tr.stats().newton_iters,
            (tr.last().unwrap().1[ix] - dp.last().unwrap().1[ix]).abs(),
        );
    }

    // The derived Jacobian the Newton loop runs on (largest-μ instance).
    let g = vdp_oscillator(&lang, 10f64.powi(decades as i32))?;
    let sys = CompiledSystem::compile(&lang, &g)?;
    let jac = sys.jacobian();
    println!(
        "\njacobian program: {} instructions, {} structural nonzeros of {} entries \
         (rhs program: {} instructions)",
        jac.instrs(),
        jac.nnz(),
        sys.num_states() * sys.num_states(),
        sys.rhs_instruction_count(),
    );

    println!("\n== Robertson kinetics to t = 40 (literature: 0.7158271, 9.186e-6, 0.2841637) ==\n");
    let rlang = robertson_language();
    let rg = robertson_network(&rlang)?;
    let rsys = CompiledSystem::compile(&rlang, &rg)?;
    let (ia, ib, ic) = (
        rsys.state_index("a").expect("a"),
        rsys.state_index("b").expect("b"),
        rsys.state_index("c").expect("c"),
    );
    let y0 = rsys.initial_state();
    let tr = TrBdf2::new(1e-8, 1e-12).integrate(&rsys.bind(), 0.0, &y0, 40.0, usize::MAX)?;
    let end = tr.last().unwrap().1;
    println!(
        "trbdf2: A = {:.7}  B = {:.3e}  C = {:.7}  (mass drift {:.1e}, {} steps, {} newton iters)",
        end[ia],
        end[ib],
        end[ic],
        (end[ia] + end[ib] + end[ic] - 1.0).abs(),
        tr.stats().accepted + tr.stats().rejected,
        tr.stats().newton_iters,
    );
    Ok(())
}
