//! Bench-regression gate: compare a fresh `BENCH_rhs.json` against the
//! committed baseline and fail if any gated deterministic metric grew more
//! than the allowed percentage.
//!
//! Gated metrics are *deterministic* outputs (unlike ns timings, which
//! depend on the host), so this check is flake-free and can run on every
//! push:
//!
//! * `workloads/*/{fused,legacy}_instructions_per_rhs` — interpreted
//!   instruction counts; catches optimizer regressions (lost CSE, broken
//!   fusion, prologue hoisting failures) the moment they land;
//! * `streaming_ensemble/*/accumulator_bytes` — the streaming reduction
//!   path's fixed per-worker state; catches the O(accumulators) memory
//!   contract quietly growing (e.g. an accumulator gaining a per-instance
//!   buffer);
//! * `stiff_vdp/*/{jacobian_instructions,trbdf2_*}` — the forward-mode
//!   Jacobian program's size and the implicit solver's step/Newton/RHS
//!   counts on the stiff Van der Pol benchmark; catches AD lowering bloat
//!   and step-controller regressions;
//! * `fault_recovery/*/{completed,recovered,failed,retry_attempts}` —
//!   per-instance outcome counts on the seeded-fault ensembles; catches
//!   the recovery chain losing instances it used to rescue, or the
//!   primary solver starting to fail on instances it used to complete;
//! * `workloads/*/native_instructions_per_rhs` — the native-codegen
//!   backend must lower exactly the fused instruction stream (growth gate
//!   *and* a per-entry equality check against
//!   `fused_instructions_per_rhs`);
//! * `workloads/cnn_fig11/native_speedup_x1000` — a **floor** gate (≥
//!   1000, i.e. native no slower than the interpreter); a drop below the
//!   floor means codegen silently fell back or regressed to parity.
//!
//! ```text
//! bench_check <baseline.json> <candidate.json> [max-growth-pct]
//! ```
//!
//! Default allowance is 5%. Exit code 1 on regression or malformed input.
//! Every ok/FAIL/skipped line is also written to `bench_check_report.txt`
//! next to the candidate report, so CI can upload the verdict as an
//! artifact; baseline sections or keys that could not be gated are listed
//! explicitly instead of being skipped silently.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Gated `(section, field)` pairs (all deterministic machine-independent
/// counts).
const CHECKED_KEYS: [(&str, &str); 14] = [
    ("workloads", "fused_instructions_per_rhs"),
    ("workloads", "legacy_instructions_per_rhs"),
    // Native codegen lowers the same fused stream: the count may never
    // drift from the interpreter's (also pinned by PARITY_KEYS below).
    ("workloads", "native_instructions_per_rhs"),
    ("streaming_ensemble", "accumulator_bytes"),
    // Stiff solver path: the derived Jacobian program's size and the
    // TR-BDF2 work counts on the Van der Pol μ=1000 benchmark. All four
    // are bit-deterministic (scalar float arithmetic, fixed controller),
    // so any AD lowering or step-controller regression trips the gate.
    ("stiff_vdp", "jacobian_instructions"),
    ("stiff_vdp", "trbdf2_accepted_steps"),
    ("stiff_vdp", "trbdf2_newton_iters"),
    ("stiff_vdp", "trbdf2_rhs_evals"),
    // Fault-tolerance path: outcome counts on the seeded-fault ensembles
    // (fixed seeds, fixed plans, fixed scale — deterministic for any
    // worker count and lane width). `failed` growing means faults the
    // recovery chain used to absorb now abort; `recovered` or
    // `retry_attempts` growing means the primary solver started failing
    // on instances it used to handle first-try.
    ("fault_recovery", "completed"),
    ("fault_recovery", "recovered"),
    ("fault_recovery", "failed"),
    ("fault_recovery", "retry_attempts"),
    // Static-analysis invariants: every emitted program (RHS, observables,
    // Jacobian) must verify with zero structural errors and zero dead
    // instructions. Both baselines are 0, so the growth gate means "must
    // stay 0" — any liveness or verifier regression trips it.
    ("analysis", "dead_instrs"),
    ("analysis", "verifier_errors"),
];

/// Per-entry equality constraints on the **candidate**: `(section, key,
/// must_equal_key)`. A mismatch is reported as a named-key diff.
const PARITY_KEYS: [(&str, &str, &str); 1] = [(
    "workloads",
    "native_instructions_per_rhs",
    "fused_instructions_per_rhs",
)];

/// Floor gates on the **candidate**: `(section, entry, key, floor)` — the
/// value must be present and at least `floor`. Missing is a FAIL (a silent
/// interpreter fallback would otherwise sail through).
const FLOOR_KEYS: [(&str, &str, &str, u64); 1] =
    [("workloads", "cnn_fig11", "native_speedup_x1000", 1000)];

/// One parsed report: section → entry name → (field → integer value).
type Sections = BTreeMap<String, BTreeMap<String, BTreeMap<String, u64>>>;

/// Quoted key opening an object on this line (`"name": {`), if any.
fn object_open(trimmed: &str) -> Option<&str> {
    trimmed
        .strip_suffix('{')
        .and_then(|s| s.trim().strip_suffix(':'))
        .and_then(|s| s.trim().strip_prefix('"'))
        .and_then(|s| s.strip_suffix('"'))
}

/// Parse every two-level section of a `BENCH_rhs.json` (`"section": {
/// "entry": { fields } }`). A tiny line scanner over our own generated
/// format, not a general JSON parser; integer fields only, everything else
/// is ignored.
fn parse_sections(text: &str) -> Sections {
    let mut out = Sections::new();
    let mut section: Option<String> = None;
    let mut entry: Option<String> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some(name) = object_open(trimmed) {
            match (&section, &entry) {
                (None, _) => {
                    out.entry(name.to_string()).or_default();
                    section = Some(name.to_string());
                }
                (Some(s), None) => {
                    out.get_mut(s)
                        .expect("section inserted on open")
                        .entry(name.to_string())
                        .or_default();
                    entry = Some(name.to_string());
                }
                (Some(_), Some(_)) => {}
            }
            continue;
        }
        if trimmed.starts_with('}') {
            if entry.take().is_none() {
                section = None;
            }
            continue;
        }
        if let (Some(s), Some(e), Some((key, value))) = (&section, &entry, trimmed.split_once(':'))
        {
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim().trim_end_matches(',');
            if let Ok(v) = value.parse::<u64>() {
                out.get_mut(s)
                    .expect("section inserted on open")
                    .get_mut(e)
                    .expect("entry inserted on open")
                    .insert(key, v);
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(baseline_path), Some(candidate_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_check <baseline.json> <candidate.json> [max-growth-pct]");
        return ExitCode::FAILURE;
    };
    let max_growth_pct: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5.0);
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(candidate)) = (read(baseline_path), read(candidate_path)) else {
        return ExitCode::FAILURE;
    };
    let base = parse_sections(&baseline);
    let cand = parse_sections(&candidate);
    if !base.get("workloads").is_some_and(|w| !w.is_empty()) {
        eprintln!("bench_check: no workloads found in baseline {baseline_path}");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    let mut checked = 0usize;
    // Everything the gate prints also lands in this transcript, written
    // next to the candidate so CI can upload it as an artifact.
    let mut report: Vec<String> = Vec::new();
    // Baseline material the growth gate could NOT compare — reported
    // explicitly instead of silently skipped.
    let mut skipped: Vec<String> = Vec::new();
    let fail = |report: &mut Vec<String>, failures: &mut usize, line: String| {
        eprintln!("{line}");
        report.push(line);
        *failures += 1;
    };
    let ok = |report: &mut Vec<String>, line: String| {
        println!("{line}");
        report.push(line);
    };
    for (section, key) in CHECKED_KEYS {
        let Some(base_entries) = base.get(section) else {
            skipped.push(format!("{section}/*/{key}: section absent from baseline"));
            continue;
        };
        let empty = BTreeMap::new();
        let cand_entries = cand.get(section).unwrap_or(&empty);
        for (name, base_fields) in base_entries {
            let Some(&b) = base_fields.get(key) else {
                skipped.push(format!("{section}/{name}/{key}: key absent from baseline"));
                continue;
            };
            let Some(&c) = cand_entries.get(name).and_then(|f| f.get(key)) else {
                fail(
                    &mut report,
                    &mut failures,
                    format!("FAIL {section}/{name}/{key}: missing from candidate report"),
                );
                continue;
            };
            checked += 1;
            let allowed = (b as f64 * (1.0 + max_growth_pct / 100.0)).floor() as u64;
            let growth = 100.0 * (c as f64 - b as f64) / (b as f64).max(1.0);
            if c > allowed {
                fail(
                    &mut report,
                    &mut failures,
                    format!(
                        "FAIL {section}/{name}/{key}: {b} -> {c} \
                         ({growth:+.1}%, allowed +{max_growth_pct}%)"
                    ),
                );
            } else {
                ok(
                    &mut report,
                    format!("ok   {section}/{name}/{key}: {b} -> {c} ({growth:+.1}%)"),
                );
            }
        }
    }
    // Equality constraints within the candidate (named-key diff on
    // mismatch): every entry that carries the left key must carry the
    // right key with the identical value.
    for (section, key, must_equal) in PARITY_KEYS {
        for (name, fields) in cand.get(section).into_iter().flatten() {
            let Some(&a) = fields.get(key) else { continue };
            match fields.get(must_equal) {
                Some(&b) if a == b => {
                    checked += 1;
                    ok(
                        &mut report,
                        format!("ok   {section}/{name}: {key} == {must_equal} ({a})"),
                    );
                }
                Some(&b) => fail(
                    &mut report,
                    &mut failures,
                    format!("FAIL {section}/{name}: {key} = {a} != {must_equal} = {b}"),
                ),
                None => fail(
                    &mut report,
                    &mut failures,
                    format!("FAIL {section}/{name}: {key} present but {must_equal} missing"),
                ),
            }
        }
    }
    // Floor gates on the candidate. Missing is a FAIL: the one way a
    // silent interpreter fallback could otherwise pass the perf gate.
    for (section, entry, key, floor) in FLOOR_KEYS {
        match cand
            .get(section)
            .and_then(|s| s.get(entry))
            .and_then(|f| f.get(key))
        {
            Some(&v) if v >= floor => {
                checked += 1;
                ok(
                    &mut report,
                    format!("ok   {section}/{entry}/{key}: {v} >= floor {floor}"),
                );
            }
            Some(&v) => fail(
                &mut report,
                &mut failures,
                format!("FAIL {section}/{entry}/{key}: {v} below floor {floor}"),
            ),
            None => fail(
                &mut report,
                &mut failures,
                format!("FAIL {section}/{entry}/{key}: missing from candidate report"),
            ),
        }
    }
    for line in &skipped {
        eprintln!("skip {line}");
        report.push(format!("skip {line}"));
    }
    let verdict = if checked == 0 {
        "bench_check: no comparable gated metrics found".to_string()
    } else if failures > 0 {
        format!("bench_check: {failures} regression(s) beyond +{max_growth_pct}%")
    } else {
        format!("bench_check: {checked} gated metrics within +{max_growth_pct}% of baseline")
    };
    report.push(verdict.clone());
    let report_path = std::path::Path::new(candidate_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map_or_else(
            || "bench_check_report.txt".into(),
            |p| p.join("bench_check_report.txt"),
        );
    if let Err(e) = std::fs::write(&report_path, report.join("\n") + "\n") {
        eprintln!("bench_check: cannot write {}: {e}", report_path.display());
    } else {
        println!("bench_check: report written to {}", report_path.display());
    }
    if checked == 0 || failures > 0 {
        eprintln!("{verdict}");
        return ExitCode::FAILURE;
    }
    println!("{verdict}");
    ExitCode::SUCCESS
}
