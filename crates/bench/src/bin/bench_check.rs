//! Bench-regression gate: compare a fresh `BENCH_rhs.json` against the
//! committed baseline and fail if any fused program's instruction count
//! grew more than the allowed percentage.
//!
//! Instruction counts are *deterministic* compiler outputs (unlike ns/RHS
//! timings, which depend on the host), so this check is flake-free and can
//! run on every push — it catches optimizer regressions (lost CSE, broken
//! fusion, prologue hoisting failures) the moment they land.
//!
//! ```text
//! bench_check <baseline.json> <candidate.json> [max-growth-pct]
//! ```
//!
//! Default allowance is 5%. Exit code 1 on regression or malformed input.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Instruction-count keys checked for growth (all deterministic).
const CHECKED_KEYS: [&str; 2] = ["fused_instructions_per_rhs", "legacy_instructions_per_rhs"];

/// Parse the `"workloads"` section of a `BENCH_rhs.json`: workload name →
/// (field → integer value). A tiny line scanner over our own generated
/// format, not a general JSON parser.
fn parse_workloads(text: &str) -> BTreeMap<String, BTreeMap<String, u64>> {
    let mut out = BTreeMap::new();
    let mut in_section = false;
    let mut current: Option<String> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if !in_section {
            in_section = trimmed.starts_with("\"workloads\"");
            continue;
        }
        if let Some(name) = trimmed
            .strip_suffix('{')
            .and_then(|s| s.trim().strip_suffix(':'))
            .and_then(|s| s.trim().strip_prefix('"'))
            .and_then(|s| s.strip_suffix('"'))
        {
            current = Some(name.to_string());
            out.entry(name.to_string()).or_insert_with(BTreeMap::new);
            continue;
        }
        if trimmed.starts_with('}') {
            match current.take() {
                Some(_) => continue,        // end of one workload object
                None => in_section = false, // end of the workloads section
            }
            continue;
        }
        if let (Some(name), Some((key, value))) = (&current, trimmed.split_once(':')) {
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim().trim_end_matches(',');
            if let Ok(v) = value.parse::<u64>() {
                out.get_mut(name)
                    .expect("entry inserted above")
                    .insert(key, v);
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(baseline_path), Some(candidate_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: bench_check <baseline.json> <candidate.json> [max-growth-pct]");
        return ExitCode::FAILURE;
    };
    let max_growth_pct: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5.0);
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(candidate)) = (read(baseline_path), read(candidate_path)) else {
        return ExitCode::FAILURE;
    };
    let base = parse_workloads(&baseline);
    let cand = parse_workloads(&candidate);
    if base.is_empty() {
        eprintln!("bench_check: no workloads found in baseline {baseline_path}");
        return ExitCode::FAILURE;
    }
    let mut failures = 0usize;
    let mut checked = 0usize;
    for (name, base_fields) in &base {
        let Some(cand_fields) = cand.get(name) else {
            eprintln!("FAIL {name}: workload missing from candidate report");
            failures += 1;
            continue;
        };
        for key in CHECKED_KEYS {
            let (Some(&b), Some(&c)) = (base_fields.get(key), cand_fields.get(key)) else {
                continue;
            };
            checked += 1;
            let allowed = (b as f64 * (1.0 + max_growth_pct / 100.0)).floor() as u64;
            let growth = 100.0 * (c as f64 - b as f64) / (b as f64).max(1.0);
            if c > allowed {
                eprintln!(
                    "FAIL {name}/{key}: {b} -> {c} ({growth:+.1}%, allowed +{max_growth_pct}%)"
                );
                failures += 1;
            } else {
                println!("ok   {name}/{key}: {b} -> {c} ({growth:+.1}%)");
            }
        }
    }
    if checked == 0 {
        eprintln!("bench_check: no comparable instruction counts found");
        return ExitCode::FAILURE;
    }
    if failures > 0 {
        eprintln!("bench_check: {failures} regression(s) beyond +{max_growth_pct}%");
        return ExitCode::FAILURE;
    }
    println!("bench_check: {checked} instruction counts within +{max_growth_pct}% of baseline");
    ExitCode::SUCCESS
}
