//! Figure 11 yield sweep: population-scale Monte Carlo over fabricated CNN
//! instances, sweeping the fabrication-mismatch standard deviation of the
//! template weights (the paper's column-C nonideality, the one that
//! actually breaks edge detection — integrator-bias mismatch binarizes
//! away until far larger sigma).
//!
//! For each sigma the hardware CNN language is rederived with
//! `hw_cnn_language_sigma` (every mismatch attribute carries `N(0, sigma)`
//! variation), the design is compiled **once**, and `trials` fabricated
//! instances run on the `ark-sim` **streaming** ensemble path: each
//! instance integrates under an allocation-free final-state observer and
//! its wrong-pixel count folds directly into online accumulators
//! (mean/variance, an exact per-count histogram, and a pass/fail yield
//! counter). No trajectory or per-instance result is ever materialized, so
//! the 10⁵-instance default runs in O(workers · histogram) memory, and the
//! emitted curve is bit-identical for any worker count and lane width.
//!
//! Output: one CSV row per sigma — yield (fraction of instances with a
//! pixel-perfect edge map), wrong-pixel moments, tail quantiles, and the
//! count of instances whose solve failed even after the default recovery
//! policy's fallback chain. Failed instances don't abort the sweep; they
//! count against yield (a chip whose simulation can't complete is not a
//! passing chip), so the denominator is always the full trial count.
//!
//! Run: `cargo run --release -p ark-bench --bin fig11_yield [trials] [workers]`
//! (defaults: 100000 trials, one worker per CPU; CI smoke uses 256). The
//! CSV is bit-identical for any worker count — pass an explicit worker
//! count to check that on your machine.

use ark_bench::trials_arg;
use ark_paradigms::cnn::{
    cnn_language, hw_cnn_language_sigma, run_cnn_yield, NonIdeality, EDGE_TEMPLATE,
};
use ark_paradigms::image::Image;
use ark_sim::{seed_range, Ensemble};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let trials = trials_arg(100_000);
    let size = 6;
    let t_end = 2.0;
    let sigmas = [0.02, 0.05, 0.10, 0.20, 0.40, 0.80];
    let base = cnn_language();
    let input = Image::test_blob(size, size);
    let seeds = seed_range(11, trials);
    let workers = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let ens = Ensemble::new(workers);

    println!("== Figure 11 yield sweep: {size}x{size} CNN edge detection ==");
    println!(
        "{} instances per sigma, streaming reduction on {} workers x {} lanes\n",
        trials,
        ens.workers(),
        ens.lanes()
    );
    println!("sigma,instances,failed,yield,mean_wrong,std_wrong,p50_wrong,p95_wrong,max_nonzero_bin,ns_per_instance");
    for sigma in sigmas {
        let hw = hw_cnn_language_sigma(&base, sigma);
        let start = std::time::Instant::now();
        let y = run_cnn_yield(
            &hw,
            &input,
            &EDGE_TEMPLATE,
            NonIdeality::GMismatch,
            t_end,
            &seeds,
            &ens,
        )?;
        let ns_per_instance = start.elapsed().as_nanos() as f64 / trials as f64;
        let max_bin = y
            .wrong_histogram
            .counts()
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c > 0)
            .map_or(0.0, |(i, _)| y.wrong_histogram.bin_center(i));
        // Yield over the *full* population: unrecovered instances are
        // non-yield, not excluded.
        let yield_frac = y.counts.pass as f64 / y.recovery.total().max(1) as f64;
        println!(
            "{sigma},{trials},{},{yield_frac:.6},{:.4},{:.4},{:.1},{:.1},{max_bin:.1},{ns_per_instance:.0}",
            y.recovery.failed,
            y.wrong_pixels.mean,
            y.wrong_pixels.std_dev(),
            y.wrong_histogram.quantile(0.5),
            y.wrong_histogram.quantile(0.95),
        );
    }
    Ok(())
}
