//! §7.2 interconnect trade-off: the `intercon_obc` language formalizes the
//! programmability/area trade-off between all-to-all (global) and
//! neighboring (local) oscillator coupling. This harness builds both
//! topology styles at several sizes, checks them against the language's
//! validity rules, and reports routing cost — mirroring the paper's
//! comparison of the 30-oscillator all-to-all chip against the
//! 560-oscillator locally-coupled chip.
//!
//! Run: `cargo run --release -p ark-bench --bin fig_intercon_cost`

use ark_core::func::GraphBuilder;
use ark_core::validate::{validate, ExternRegistry};
use ark_paradigms::obc::{intercon_obc_language, interconnect_cost, obc_language};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = obc_language();
    let ic = intercon_obc_language(&base);
    let externs = ExternRegistry::new();

    println!("== §7.2: interconnect cost, all-to-all vs grouped-local ==\n");
    println!(
        "{:>6} {:>16} {:>16} {:>8}",
        "oscs", "all-to-all cost", "grouped cost", "ratio"
    );

    for &n in &[8usize, 16, 24, 32] {
        // All-to-all: every pair coupled globally, split into two groups so
        // the types are exercised (group membership is arbitrary here).
        let mut b = GraphBuilder::new(&ic, 0);
        for i in 0..n {
            let g = if i < n / 2 { "Osc_G0" } else { "Osc_G1" };
            b.node(&format!("o{i}"), g)?;
            b.edge(
                &format!("s{i}"),
                "Cpl_l",
                &format!("o{i}"),
                &format!("o{i}"),
            )?;
        }
        for i in 0..n {
            for j in (i + 1)..n {
                b.edge(
                    &format!("g{i}_{j}"),
                    "Cpl_g",
                    &format!("o{i}"),
                    &format!("o{j}"),
                )?;
            }
        }
        let all_to_all = b.finish()?;
        let report = validate(&ic, &all_to_all, &externs)?;
        assert!(report.is_valid(), "{report}");
        let cost_global = interconnect_cost(&all_to_all);

        // Grouped: ring coupling inside each of the two groups, one global
        // bridge between groups.
        let mut b = GraphBuilder::new(&ic, 0);
        let half = n / 2;
        for i in 0..n {
            let g = if i < half { "Osc_G0" } else { "Osc_G1" };
            b.node(&format!("o{i}"), g)?;
            b.edge(
                &format!("s{i}"),
                "Cpl_l",
                &format!("o{i}"),
                &format!("o{i}"),
            )?;
        }
        for grp in 0..2usize {
            let base_i = grp * half;
            for k in 0..half {
                let a = base_i + k;
                let c = base_i + (k + 1) % half;
                if a != c {
                    b.edge(
                        &format!("l{a}_{c}"),
                        "Cpl_l",
                        &format!("o{a}"),
                        &format!("o{c}"),
                    )?;
                }
            }
        }
        b.edge("bridge", "Cpl_g", "o0", &format!("o{half}"))?;
        let grouped = b.finish()?;
        let report = validate(&ic, &grouped, &externs)?;
        assert!(report.is_valid(), "{report}");
        let cost_local = interconnect_cost(&grouped);

        println!(
            "{n:>6} {cost_global:>16} {cost_local:>16} {:>8.1}",
            cost_global as f64 / cost_local as f64
        );
    }

    println!("\nA local Cpl_l edge crossing groups is rejected at compile time:");
    let mut b = GraphBuilder::new(&ic, 0);
    b.node("a", "Osc_G0")?;
    b.node("z", "Osc_G1")?;
    b.edge("sa", "Cpl_l", "a", "a")?;
    b.edge("sz", "Cpl_l", "z", "z")?;
    b.edge("bad", "Cpl_l", "a", "z")?;
    let bad = b.finish()?;
    let report = validate(&ic, &bad, &externs)?;
    println!("{report}");
    assert!(!report.is_valid());
    Ok(())
}
