//! Figure 2 reproduction: the branched and linear t-lines validate, the
//! malformed t-line (V–V connection) is rejected by the TLN language.
//!
//! Run: `cargo run --release -p ark-bench --bin fig2_validation`

use ark_core::func::GraphBuilder;
use ark_core::validate::{validate, ExternRegistry};
use ark_paradigms::tln::{branched_tline, linear_tline, pulse_fn, tln_language, TlineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lang = tln_language();
    let externs = ExternRegistry::new();
    let cfg = TlineConfig::default();

    println!("== Figure 2: TLN dynamical graphs and validation ==\n");

    let linear = linear_tline(&lang, 26, &cfg, 0)?;
    let report = validate(&lang, &linear, &externs)?;
    println!(
        "(ii) linear t-line: {} nodes, {} edges -> {}",
        linear.num_nodes(),
        linear.num_edges(),
        report
    );

    let branched = branched_tline(&lang, 8, 10, 8, &cfg, 0)?;
    let report = validate(&lang, &branched, &externs)?;
    println!(
        "(i) branched t-line: {} nodes, {} edges -> {}",
        branched.num_nodes(),
        branched.num_edges(),
        report
    );

    // Malformed: V connected directly to V (Figure 2-iii).
    let mut b = GraphBuilder::new(&lang, 0);
    b.node("InpI_0", "InpI")?;
    b.set_attr("InpI_0", "fn", pulse_fn(2e-8))?;
    b.node("IN_V", "V")?;
    b.set_attr("IN_V", "c", 1e-9)?;
    b.node("V_0", "V")?;
    b.set_attr("V_0", "c", 1e-9)?;
    b.node("OUT_V", "V")?;
    b.set_attr("OUT_V", "c", 1e-9)?;
    b.edge("eInp", "E", "InpI_0", "IN_V")?;
    b.edge("s0", "E", "IN_V", "IN_V")?;
    b.edge("bad0", "E", "IN_V", "V_0")?;
    b.edge("s1", "E", "V_0", "V_0")?;
    b.edge("bad1", "E", "V_0", "OUT_V")?;
    b.edge("s2", "E", "OUT_V", "OUT_V")?;
    let malformed = b.finish()?;
    let report = validate(&lang, &malformed, &externs)?;
    println!(
        "(iii) malformed t-line: {} nodes -> {}",
        malformed.num_nodes(),
        report
    );
    assert!(!report.is_valid(), "the malformed line must be rejected");

    println!("\nbranched t-line topology (graphviz):\n");
    // Print just the head of the dot output to keep the log readable.
    for line in branched.to_dot().lines().take(12) {
        println!("{line}");
    }
    println!("  ...");
    Ok(())
}
