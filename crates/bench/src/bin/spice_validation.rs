//! §4.5 empirical validation: generate random valid GmC-TLN dynamical
//! graphs, lower each to a SPICE-level netlist, and compare transients.
//! Paper claims: (1) all valid DGs map to a netlist, (2) DG and netlist
//! dynamics agree within 1% RMSE.
//!
//! Run: `cargo run --release -p ark-bench --bin spice_validation [trials]`
//! (paper scale: 1000 trials).

use ark_bench::trials_arg;
use ark_core::validate::{validate, ExternRegistry};
use ark_paradigms::tln::{gmc_tln_language, tln_language};
use ark_sim::{seed_range, Ensemble};
use ark_spice::validate::{dg_vs_netlist_rmse, random_gmc_tline};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let trials = trials_arg(1000);
    let base = tln_language();
    let gmc = gmc_tln_language(&base);
    let ens = Ensemble::default();

    println!("== §4.5: {trials} random GmC-TLN designs vs SPICE netlists ==");
    println!("ensemble engine: {} workers\n", ens.workers());

    // Each random design is one seeded `ark-sim` job: generate, validate,
    // synthesize, and cross-simulate in parallel, deterministically.
    let results = ens.try_map(&seed_range(0, trials), |seed| {
        let externs = ExternRegistry::new();
        let graph = random_gmc_tline(&gmc, seed)?;
        let report = validate(&gmc, &graph, &externs)?;
        assert!(
            report.is_valid(),
            "generator must produce valid DGs: {report}"
        );
        let rmse = dg_vs_netlist_rmse(&gmc, &graph, 2e-8, 4e-11)?;
        Ok::<_, ark_paradigms::DynError>((graph.num_nodes(), rmse))
    })?;

    let mut synthesized = 0usize;
    let mut under_1pct = 0usize;
    let mut worst: f64 = 0.0;
    let mut sum = 0.0;
    for (seed, (nodes, rmse)) in results.iter().enumerate() {
        synthesized += 1;
        if *rmse < 0.01 {
            under_1pct += 1;
        }
        worst = worst.max(*rmse);
        sum += rmse;
        if seed < 5 {
            println!("instance {seed:>4}: {nodes} nodes, rmse {rmse:.3e}");
        }
    }
    println!("  ...");
    println!("\nsynthesized: {synthesized}/{trials} (paper: all valid DGs map to netlists)");
    println!("under 1% RMSE: {under_1pct}/{trials}");
    println!(
        "worst RMSE: {worst:.3e}, mean RMSE: {:.3e}",
        sum / trials as f64
    );
    println!(
        "\npaper shape (100% synthesis, RMSE < 1%): {}",
        if synthesized == trials && under_1pct == trials {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    Ok(())
}
