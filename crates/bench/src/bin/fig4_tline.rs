//! Figure 4 reproduction: `OUT_V` transients of (a) the branched t-line,
//! (b) the linear t-line, and the mismatch envelopes of (c) the
//! Cint-mismatched and (d) the Gm-mismatched lines over 100 sampled
//! devices.
//!
//! Run: `cargo run --release -p ark-bench --bin fig4_tline [trials]`

use ark_bench::{print_series, sparkline, trials_arg};
use ark_core::CompiledSystem;
use ark_ode::{ensemble_stats, Rk4, Trajectory};
use ark_paradigms::tln::{
    branched_out_v, branched_tline, gmc_tln_language, linear_out_v, linear_tline, tln_language,
    MismatchKind, TlineConfig,
};

const T_END: f64 = 8e-8;
const DT: f64 = 2e-11;

fn simulate(
    lang: &ark_core::Language,
    graph: &ark_core::Graph,
    out: &str,
) -> Result<(usize, Trajectory), Box<dyn std::error::Error>> {
    let sys = CompiledSystem::compile(lang, graph)?;
    let idx = sys.state_index(out).expect("observation node is stateful");
    let tr = Rk4 { dt: DT }.integrate(&sys.bind(), 0.0, &sys.initial_state(), T_END, 8)?;
    Ok((idx, tr))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials = trials_arg(100);
    let base = tln_language();
    let gmc = gmc_tln_language(&base);
    let cfg = TlineConfig::default();

    println!("== Figure 4: t-line transients at OUT_V ==\n");

    // (b) Linear 53-node line.
    let linear = linear_tline(&base, 26, &cfg, 0)?;
    let (li, ltr) = simulate(&base, &linear, &linear_out_v(26))?;
    let (t_peak, v_peak) = ltr.peak_in_window(li, 0.0, T_END);
    println!("(b) linear: peak {v_peak:.3} V at {t_peak:.2e} s");
    println!("    {}", sparkline(&ltr.resample(li, 0.0, T_END, 80)));
    print_series("linear_out_v", &ltr, li, 0.0, T_END, 160);

    // (a) Branched 53-node line: attenuated pulse + echo.
    let branched = branched_tline(&base, 8, 10, 8, &cfg, 0)?;
    let (bi, btr) = simulate(&base, &branched, &branched_out_v(8))?;
    let (tb, vb) = btr.peak_in_window(bi, 0.0, 4.5e-8);
    let (te, ve) = btr.peak_in_window(bi, tb + 2.2e-8, T_END);
    println!("\n(a) branched: main peak {vb:.3} V at {tb:.2e} s; echo {ve:.3} V at {te:.2e} s");
    println!("    {}", sparkline(&btr.resample(bi, 0.0, T_END, 80)));
    print_series("branched_out_v", &btr, bi, 0.0, T_END, 160);

    // (c)/(d) Mismatch ensembles over the linear line.
    let segments = 26;
    let out_name = linear_out_v(segments);
    let run_ensemble = |kind: MismatchKind| -> Result<Vec<Trajectory>, Box<dyn std::error::Error>> {
        let cfg = TlineConfig {
            mismatch: kind,
            ..TlineConfig::default()
        };
        let mut trs = Vec::with_capacity(trials);
        for seed in 0..trials as u64 {
            let g = linear_tline(&gmc, segments, &cfg, seed)?;
            let (_, tr) = simulate(&gmc, &g, &out_name)?;
            trs.push(tr);
        }
        Ok(trs)
    };
    let cint = run_ensemble(MismatchKind::Cint)?;
    let gm = run_ensemble(MismatchKind::Gm)?;
    // Observation window of the linear line (paper: 1e-8..3e-8; our lumped
    // line carries the pulse slightly later, so measure around the peak).
    let (w0, w1) = (t_peak - 1e-8, t_peak + 1e-8);
    let cint_stats = ensemble_stats(&cint, li, w0, w1, 60);
    let gm_stats = ensemble_stats(&gm, li, w0, w1, 60);
    println!(
        "\n(c) Cint mismatch ({trials} devices): mean std {:.4e} V, max std {:.4e} V",
        cint_stats.mean_std(),
        cint_stats.max_std()
    );
    println!(
        "(d) Gm   mismatch ({trials} devices): mean std {:.4e} V, max std {:.4e} V",
        gm_stats.mean_std(),
        gm_stats.max_std()
    );
    let ratio = gm_stats.mean_std() / cint_stats.mean_std();
    println!("\nGm/Cint variation ratio in the observation window: {ratio:.1}x");
    println!(
        "paper shape: Gm-mismatched line varies much more than Cint-mismatched -> {}",
        if ratio > 1.5 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    Ok(())
}
