//! Figure 11 reproduction: CNN edge detection under hardware nonidealities.
//!
//! Columns: A ideal, B 10% integrator-bias (z) mismatch, C 10% template
//! weight (g) mismatch, D non-ideal saturation. Rows: output snapshots at
//! t = 0, 0.25, 0.5, 0.75, 1.0 (unit time constants).
//!
//! Run: `cargo run --release -p ark-bench --bin fig11_cnn [size]`

use ark_bench::trials_arg;
use ark_paradigms::cnn::{
    build_cnn, cnn_language, hw_cnn_language, run_cnn, NonIdeality, EDGE_TEMPLATE,
};
use ark_paradigms::image::Image;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = trials_arg(16);
    let base = cnn_language();
    let hw = hw_cnn_language(&base);
    let input = Image::test_blob(size, size);
    let expected = input.digital_edge_map();
    let snap_times = [0.0, 0.25, 0.5, 0.75, 1.0];

    println!("== Figure 11: CNN edge detection with nonidealities ({size}x{size}) ==\n");
    println!("input image:\n{}", input.to_ascii());
    println!("digital reference edge map:\n{}", expected.to_ascii());

    let columns = [
        ("A: ideal", NonIdeality::Ideal),
        ("B: z mismatch 10%", NonIdeality::ZMismatch),
        ("C: g mismatch 10%", NonIdeality::GMismatch),
        ("D: non-ideal saturation", NonIdeality::NonIdealSat),
    ];

    let mut summary = Vec::new();
    for (label, kind) in columns {
        let inst = build_cnn(&hw, &input, &EDGE_TEMPLATE, kind, 3)?;
        let run = run_cnn(&hw, &inst, 5.0, &snap_times)?;
        println!("---- column {label} ----");
        for (t, img) in &run.snapshots {
            println!("t = {t:.2}:");
            println!("{}", img.binarized().to_ascii());
        }
        let wrong = run.final_output.diff_count(&expected);
        let tc = run.convergence_time;
        println!("final wrong pixels vs digital reference: {wrong}");
        println!("binarized-output convergence time: {tc:?}\n");
        summary.push((label, wrong, tc));
    }

    println!("== summary (paper shape check) ==");
    println!(
        "{:<26} {:>12} {:>18}",
        "variant", "wrong px", "convergence t"
    );
    for (label, wrong, tc) in &summary {
        println!(
            "{label:<26} {wrong:>12} {:>18}",
            tc.map_or("never".to_string(), |t| format!("{t:.3}"))
        );
    }
    let ideal_t = summary[0].2.unwrap_or(f64::INFINITY);
    let z_t = summary[1].2.unwrap_or(f64::INFINITY);
    let sat_t = summary[3].2.unwrap_or(f64::INFINITY);
    println!("\nA correct: {}", summary[0].1 == 0);
    println!(
        "B slower than A: {} ({z_t:.3} vs {ideal_t:.3})",
        z_t >= ideal_t
    );
    println!("C corrupts output: {}", summary[2].1 > 0);
    println!(
        "D correct and at least as fast as A: {} ({sat_t:.3} vs {ideal_t:.3})",
        summary[3].1 == 0 && sat_t <= ideal_t + 1e-9
    );
    Ok(())
}
