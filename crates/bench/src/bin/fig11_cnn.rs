//! Figure 11 reproduction: CNN edge detection under hardware nonidealities.
//!
//! Columns: A ideal, B 10% integrator-bias (z) mismatch, C 10% template
//! weight (g) mismatch, D non-ideal saturation. Rows: output snapshots at
//! t = 0, 0.25, 0.5, 0.75, 1.0 (unit time constants).
//!
//! The mismatch columns (B, C) are *ensembles*: several fabricated
//! instances run through the `ark-sim` engine in parallel (results are
//! deterministic — seed-keyed, worker-count independent), and the summary
//! reports per-column statistics across the instances, mirroring the
//! paper's Monte Carlo methodology.
//!
//! Run: `cargo run --release -p ark-bench --bin fig11_cnn [size]`

use ark_bench::trials_arg;
use ark_paradigms::cnn::{
    cnn_language, hw_cnn_language, run_cnn_ensemble, CnnRun, NonIdeality, EDGE_TEMPLATE,
};
use ark_paradigms::image::Image;
use ark_sim::{seed_range, Ensemble};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let size = trials_arg(16);
    let base = cnn_language();
    let hw = hw_cnn_language(&base);
    let input = Image::test_blob(size, size);
    let expected = input.digital_edge_map();
    let snap_times = [0.0, 0.25, 0.5, 0.75, 1.0];
    let ens = Ensemble::default();

    println!("== Figure 11: CNN edge detection with nonidealities ({size}x{size}) ==");
    println!("ensemble engine: {} workers\n", ens.workers());
    println!("input image:\n{}", input.to_ascii());
    println!("digital reference edge map:\n{}", expected.to_ascii());

    // One seed for the deterministic columns; a small fabricated-instance
    // ensemble for the mismatch columns.
    let columns = [
        ("A: ideal", NonIdeality::Ideal, 1usize),
        ("B: z mismatch 10%", NonIdeality::ZMismatch, 8),
        ("C: g mismatch 10%", NonIdeality::GMismatch, 8),
        ("D: non-ideal saturation", NonIdeality::NonIdealSat, 1),
    ];

    let mut summary = Vec::new();
    for (label, kind, instances) in columns {
        let seeds = seed_range(3, instances);
        let runs: Vec<CnnRun> = run_cnn_ensemble(
            &hw,
            &input,
            &EDGE_TEMPLATE,
            kind,
            5.0,
            &snap_times,
            &seeds,
            &ens,
        )?;
        println!("---- column {label} ({instances} instance(s)) ----");
        // Snapshots from the first fabricated instance.
        for (t, img) in &runs[0].snapshots {
            println!("t = {t:.2}:");
            println!("{}", img.binarized().to_ascii());
        }
        let wrong: Vec<usize> = runs
            .iter()
            .map(|r| r.final_output.diff_count(&expected))
            .collect();
        let mean_wrong = wrong.iter().sum::<usize>() as f64 / wrong.len() as f64;
        let settled: Vec<f64> = runs.iter().filter_map(|r| r.convergence_time).collect();
        let mean_tc = if settled.is_empty() {
            None
        } else {
            Some(settled.iter().sum::<f64>() / settled.len() as f64)
        };
        println!("wrong pixels per instance vs digital reference: {wrong:?}");
        println!("mean convergence time: {mean_tc:?}\n");
        summary.push((label, mean_wrong, mean_tc));
    }

    println!("== summary (paper shape check, means over instances) ==");
    println!(
        "{:<26} {:>12} {:>18}",
        "variant", "wrong px", "convergence t"
    );
    for (label, wrong, tc) in &summary {
        println!(
            "{label:<26} {wrong:>12.2} {:>18}",
            tc.map_or("never".to_string(), |t| format!("{t:.3}"))
        );
    }
    let ideal_t = summary[0].2.unwrap_or(f64::INFINITY);
    let z_t = summary[1].2.unwrap_or(f64::INFINITY);
    let sat_t = summary[3].2.unwrap_or(f64::INFINITY);
    println!("\nA correct: {}", summary[0].1 == 0.0);
    println!(
        "B slower than A: {} ({z_t:.3} vs {ideal_t:.3})",
        z_t >= ideal_t
    );
    println!("C corrupts output: {}", summary[2].1 > 0.0);
    println!(
        "D correct and at least as fast as A: {} ({sat_t:.3} vs {ideal_t:.3})",
        summary[3].1 == 0.0 && sat_t <= ideal_t + 1e-9
    );
    Ok(())
}
