//! `ark-lint`: static analysis over the paper-figure designs.
//!
//! Compiles each paper design (Figures 2, 4, 11, Table 1, the §4.5 SPICE
//! validation generator, the §7.2 interconnect study) plus the stiff
//! benchmark systems, then runs the `ark_expr::analysis` suite — the
//! structural verifier, the interval/domain analysis, and the determinism
//! lint — over every emitted program: the fused RHS, the observables
//! program, and the forward-mode Jacobian.
//!
//! Exit status is nonzero if any program has a structural violation, a
//! dead instruction, or a determinism-lint error. Domain warnings and
//! `note:` lines are informational: they flag *guaranteed*-undefined
//! operations and chain shapes worth a look, not necessarily bugs, and
//! are printed (CI uploads them as an artifact) without failing the run.
//!
//! Run: `cargo run --release -p ark-bench --bin ark_lint`

use ark_core::func::GraphBuilder;
use ark_core::{CompiledSystem, Graph, Language};
use ark_expr::{analyze, ProgramReport};
use ark_paradigms::cnn::{build_cnn, cnn_language, hw_cnn_language, NonIdeality, EDGE_TEMPLATE};
use ark_paradigms::image::Image;
use ark_paradigms::maxcut::{build_maxcut_network, CouplingKind, MaxCutProblem};
use ark_paradigms::obc::{intercon_obc_language, obc_language, ofs_obc_language};
use ark_paradigms::stiff::{robertson_language, robertson_network, vdp_language, vdp_oscillator};
use ark_paradigms::tln::{
    branched_tline, gmc_tln_language, linear_tline, tln_language, MismatchKind, TlineConfig,
};
use ark_spice::validate::random_gmc_tline;

/// One design under analysis: a name and its compiled system.
struct Design {
    name: &'static str,
    sys: CompiledSystem,
}

fn compile(name: &'static str, lang: &Language, graph: &Graph) -> Design {
    let sys = CompiledSystem::compile(lang, graph)
        .unwrap_or_else(|e| panic!("{name}: compile failed: {e}"));
    Design { name, sys }
}

/// The §7.2 all-to-all interconnect network at `n` oscillators (the
/// grouped-local variant lowers to the same dynamics, so one topology
/// suffices for program analysis).
fn intercon_all_to_all(lang: &Language, n: usize) -> Graph {
    let mut b = GraphBuilder::new(lang, 0);
    for i in 0..n {
        let g = if i < n / 2 { "Osc_G0" } else { "Osc_G1" };
        b.node(&format!("o{i}"), g).unwrap();
        b.edge(
            &format!("s{i}"),
            "Cpl_l",
            &format!("o{i}"),
            &format!("o{i}"),
        )
        .unwrap();
    }
    for i in 0..n {
        for j in (i + 1)..n {
            b.edge(
                &format!("g{i}_{j}"),
                "Cpl_g",
                &format!("o{i}"),
                &format!("o{j}"),
            )
            .unwrap();
        }
    }
    b.finish().unwrap()
}

fn designs() -> Vec<Design> {
    let mut out = Vec::new();

    // Figure 11: CNN edge detection with g-mismatch (one fabricated
    // instance; mismatch exercises the sampled-attribute path).
    let base = cnn_language();
    let hw = hw_cnn_language(&base);
    let input = Image::test_blob(8, 6);
    let cnn = build_cnn(&hw, &input, &EDGE_TEMPLATE, NonIdeality::GMismatch, 1).unwrap();
    out.push(compile("cnn_fig11", &hw, &cnn.graph));

    // Figure 4: the 26-segment linear t-line with Gm mismatch, and
    // Figure 2-i: the branched line (ideal).
    let tbase = tln_language();
    let gmc = gmc_tln_language(&tbase);
    let cfg = TlineConfig {
        mismatch: MismatchKind::Gm,
        ..TlineConfig::default()
    };
    let tln = linear_tline(&gmc, 26, &cfg, 1).unwrap();
    out.push(compile("tln_fig4_linear", &gmc, &tln));
    let branched = branched_tline(&tbase, 8, 10, 8, &TlineConfig::default(), 0).unwrap();
    out.push(compile("tln_fig2_branched", &tbase, &branched));

    // Table 1: the offset-coupling OBC max-cut network.
    let obase = obc_language();
    let ofs = ofs_obc_language(&obase);
    let problem = MaxCutProblem::random(6, 3);
    let obc = build_maxcut_network(&ofs, &problem, CouplingKind::Offset, 3).unwrap();
    out.push(compile("obc_table1", &ofs, &obc));

    // §4.5: a generator-produced random GmC-TLN design (the family the
    // SPICE cross-validation sweeps over).
    let rnd = random_gmc_tline(&gmc, 0).unwrap();
    out.push(compile("spice_s45_gmc", &gmc, &rnd));

    // §7.2: the all-to-all interconnect study network.
    let ic = intercon_obc_language(&obase);
    let icg = intercon_all_to_all(&ic, 8);
    out.push(compile("intercon_s72", &ic, &icg));

    // Stiff benchmark systems: Van der Pol at mu = 1000 and Robertson
    // kinetics — the implicit-solver path compiles Jacobian programs
    // worth linting.
    let vlang = vdp_language();
    let vdp = vdp_oscillator(&vlang, 1000.0).unwrap();
    out.push(compile("stiff_vdp", &vlang, &vdp));
    let rlang = robertson_language();
    let rob = robertson_network(&rlang).unwrap();
    out.push(compile("stiff_robertson", &rlang, &rob));

    out
}

/// Print one program's report; returns `(hard_errors + dead + determinism
/// errors, domain warnings)` for the run summary.
fn report(design: &str, program: &str, r: &ProgramReport) -> (usize, usize) {
    println!(
        "  {program}: {} pprologue + {} tprologue + {} body instrs, \
         {} regs ({} consts, {} params), {} outputs",
        r.segments.pprologue,
        r.segments.tprologue,
        r.segments.body,
        r.regs,
        r.consts,
        r.params,
        r.outputs,
    );
    for e in &r.errors {
        println!("    error[{design}/{program}]: {e}");
    }
    for w in &r.domain {
        println!("    warning[{design}/{program}]: {w}");
    }
    for l in &r.determinism {
        if l.starts_with("note:") {
            println!("    {l}");
        } else {
            println!("    error[{design}/{program}]: determinism: {l}");
        }
    }
    (
        r.hard_errors() + r.dead_instrs() + r.determinism_errors(),
        r.domain.len(),
    )
}

fn main() {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut programs = 0usize;

    println!("== ark-lint: static analysis over the paper-figure designs ==\n");
    for d in designs() {
        println!(
            "{} ({} states, {} algebraics)",
            d.name,
            d.sys.num_states(),
            d.sys.num_algebraics(),
        );
        let jac = d.sys.jacobian();
        let sections = [
            ("rhs", analyze(d.sys.rhs_program())),
            ("observables", analyze(d.sys.obs_program())),
            ("jacobian", analyze(jac.program())),
        ];
        for (program, r) in &sections {
            let (e, w) = report(d.name, program, r);
            errors += e;
            warnings += w;
            programs += 1;
        }
        println!();
    }

    println!("{programs} programs linted: {errors} errors, {warnings} domain warnings");
    if errors > 0 {
        std::process::exit(1);
    }
}
