//! Table 1 reproduction: probability of successful synchronization and of
//! solving max-cut, for the ideal OBC solver and the integrator-offset
//! variant, at readout tolerances d = 0.01π and d = 0.1π, over random
//! unweighted 4-vertex graphs.
//!
//! Run: `cargo run --release -p ark-bench --bin table1_maxcut [trials]`
//! (paper scale: 1000 trials).

use ark_bench::trials_arg;
use ark_paradigms::maxcut::{classify_phases, solve, CouplingKind, MaxCutProblem};
use ark_paradigms::obc::{obc_language, ofs_obc_language};
use ark_sim::{seed_range, Ensemble};
use std::f64::consts::PI;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let trials = trials_arg(1000);
    let base = obc_language();
    let ofs = ofs_obc_language(&base);
    let ds = [0.01 * PI, 0.1 * PI];
    let ens = Ensemble::default();

    println!("== Table 1: OBC max-cut over {trials} random 4-vertex graphs ==");
    println!("ensemble engine: {} workers\n", ens.workers());

    // One simulation per (graph, variant); both tolerances reuse the final
    // phases, mirroring the paper's external readout parameter. Each trial
    // is one seeded `ark-sim` job, so the table is bit-identical for any
    // worker count.
    let per_trial = ens.try_map(&seed_range(0, trials), |t| {
        let problem = MaxCutProblem::random(4, t);
        let mut cells = [[(0usize, 0usize); 2]; 2]; // [variant][d] -> (sync, solved)
        for (vi, coupling) in [CouplingKind::Ideal, CouplingKind::Offset]
            .into_iter()
            .enumerate()
        {
            // d only affects classification; pass the loosest and re-classify.
            let outcome = solve(&ofs, &problem, coupling, ds[1], t)?;
            for (di, &d) in ds.iter().enumerate() {
                let partition = classify_phases(&outcome.phases, d);
                if let Some(p) = partition {
                    cells[vi][di].0 += 1;
                    if problem.cut_value(p) == outcome.optimum {
                        cells[vi][di].1 += 1;
                    }
                }
            }
        }
        Ok::<_, ark_paradigms::DynError>(cells)
    })?;
    let mut cells = [[(0usize, 0usize); 2]; 2];
    for trial in per_trial {
        for vi in 0..2 {
            for di in 0..2 {
                cells[vi][di].0 += trial[vi][di].0;
                cells[vi][di].1 += trial[vi][di].1;
            }
        }
    }

    let pct = |x: usize| 100.0 * x as f64 / trials as f64;
    println!(
        "{:>8} | {:>10} {:>10} | {:>10} {:>10}",
        "", "obc sync%", "obc slvd%", "ofs sync%", "ofs slvd%"
    );
    for (di, label) in ["0.01*pi", "0.1*pi"].iter().enumerate() {
        println!(
            "{label:>8} | {:>10.1} {:>10.1} | {:>10.1} {:>10.1}",
            pct(cells[0][di].0),
            pct(cells[0][di].1),
            pct(cells[1][di].0),
            pct(cells[1][di].1),
        );
    }

    println!("\npaper reference:");
    println!(
        "{:>8} | {:>10} {:>10} | {:>10} {:>10}",
        "", "94.1", "94.1", "54.1", "54.1"
    );
    println!(
        "{:>8} | {:>10} {:>10} | {:>10} {:>10}",
        "", "94.2", "94.1", "94.8", "94.6"
    );

    let tight_gap = pct(cells[0][0].0) - pct(cells[1][0].0);
    let recovered = pct(cells[1][1].0);
    println!("\nshape checks:");
    println!(
        "  offset loses heavily at d=0.01*pi (gap {tight_gap:.1} points): {}",
        if tight_gap > 15.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    println!(
        "  widening d to 0.1*pi recovers the offset solver ({recovered:.1}%): {}",
        if recovered > 85.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    Ok(())
}
