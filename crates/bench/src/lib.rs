//! # ark-bench: benchmark harness and paper-figure regeneration
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md §3
//! for the experiment index):
//!
//! | target | reproduces |
//! |--------|------------|
//! | `fig2_validation` | Figure 2 — branched/linear valid, malformed rejected |
//! | `fig4_tline` | Figure 4a–d — t-line transients and mismatch envelopes |
//! | `fig11_cnn` | Figure 11 — CNN edge detection under nonidealities |
//! | `table1_maxcut` | Table 1 — max-cut sync/solve probabilities |
//! | `spice_validation` | §4.5 — 1000 random DGs vs SPICE netlists |
//! | `fig_intercon_cost` | §7.2 — local/global interconnect cost trade-off |
//!
//! Run with `cargo run --release -p ark-bench --bin <target>`; pass a
//! number as the first argument to scale trial counts down for quick runs.
//! Criterion performance benchmarks live under `benches/`.

#![warn(missing_docs)]
// Unsafe code lives only in ark-expr's codegen dlopen path.
#![forbid(unsafe_code)]

use ark_ode::Trajectory;

/// Read an optional trial-count override from the first CLI argument.
pub fn trials_arg(default: usize) -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Print a `(t, value)` series as CSV under a header comment.
pub fn print_series(label: &str, tr: &Trajectory, var: usize, t0: f64, t1: f64, n: usize) {
    println!("# series: {label}");
    println!("t,{label}");
    for i in 0..n {
        let t = t0 + (t1 - t0) * i as f64 / (n - 1) as f64;
        println!("{t:.4e},{:.6e}", tr.value_at(t, var));
    }
}

/// A compact text sparkline of a series (for eyeballing pulse shapes in the
/// terminal; the CSV output is the real artifact).
pub fn sparkline(values: &[f64]) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-300);
    values
        .iter()
        .map(|v| RAMP[(((v - lo) / span) * 7.0).round().clamp(0.0, 7.0) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0, 0.5]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[1], '█');
    }

    #[test]
    fn trials_arg_default() {
        assert_eq!(trials_arg(42), 42);
    }
}
