//! Right-hand-side microbenchmark: the fused `SystemProgram` path vs the
//! legacy per-node tape path, on the three paper workloads (Figure 11 CNN,
//! Figure 4 GmC-TLN, Table 1 OBC max-cut), plus the compile-once parametric
//! ensembles vs the historical recompile-per-instance loops.
//!
//! Besides the criterion timings, the bench writes `BENCH_rhs.json` —
//! interpreted-instruction counts, register-file sizes, ns/RHS, and
//! ensemble wall times (scalar and lane-parallel) — so future PRs have a
//! perf trajectory to compare against. At full scale it refreshes the
//! committed baseline at the repo root; in smoke mode (any of the env
//! overrides below set) it writes `target/BENCH_rhs.json` instead, and it
//! refuses to overwrite a larger-scale baseline unless `ARK_BENCH_FORCE=1`
//! — so CI's tiny smoke numbers can never clobber the paper-scale file.
//!
//! Smoke-mode knobs (used by CI): `ARK_RHS_EVALS` overrides the number of
//! timed RHS evaluations, `ARK_RHS_ENSEMBLE_N` the ensemble instance count,
//! and `ARK_RHS_STREAM_N` the streaming-reduction instance count.

use ark_core::{Backend, CompiledSystem};
use ark_ode::{DormandPrince, Rk4, TrBdf2};
use ark_paradigms::cnn::{
    build_cnn, build_cnn_parametric, cnn_language, hw_cnn_language, run_cnn, run_cnn_ensemble,
    run_cnn_ensemble_scalar_readout, NonIdeality, EDGE_TEMPLATE,
};
use ark_paradigms::image::Image;
use ark_paradigms::maxcut::{solve, table1_cell_with, CouplingKind, MaxCutProblem};
use ark_paradigms::obc::{obc_language, ofs_obc_language};
use ark_paradigms::tln::{
    gmc_tln_language, linear_tline, tline_mismatch_ensemble, tln_language, MismatchKind,
    TlineConfig,
};
use ark_sim::{seed_range, Ensemble};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::f64::consts::PI;
use std::fmt::Write as _;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Mean ns per RHS evaluation. The time grid cycles, so the fused path's
/// prologue cache almost never hits — this is its *conservative* cost.
fn time_rhs(sys: &CompiledSystem, legacy: bool, evals: usize) -> f64 {
    let n = sys.num_states();
    let mut y = sys.initial_state();
    let mut dydt = vec![0.0; n];
    let mut scratch = sys.scratch();
    for k in 0..32 {
        // Warm caches and buffers.
        sys.rhs_with(k as f64 * 1e-3, &y, &mut dydt, &mut scratch);
    }
    let start = Instant::now();
    for k in 0..evals {
        let t = (k % 1024) as f64 * 1e-3;
        if legacy {
            sys.rhs_legacy_with(t, &y, &mut dydt, &mut scratch);
        } else {
            sys.rhs_with(t, &y, &mut dydt, &mut scratch);
        }
        // Keep the state moving so values are not trivially constant.
        y[k % n] += dydt[k % n] * 1e-6;
    }
    black_box(&dydt);
    start.elapsed().as_nanos() as f64 / evals as f64
}

struct Workload {
    name: &'static str,
    sys: CompiledSystem,
}

struct WorkloadReport {
    name: &'static str,
    states: usize,
    algebraics: usize,
    legacy_instrs: usize,
    fused_instrs: usize,
    fused_prologue: usize,
    fused_regs: usize,
    fused_consts: usize,
    legacy_ns: f64,
    fused_ns: f64,
    /// Instruction count of the natively-compiled program — must equal
    /// `fused_instrs` (codegen lowers the same stream); `bench_check`
    /// enforces the parity.
    native_instrs: usize,
    native_ns: f64,
    /// Whether a generated kernel actually ran (false = interpreter
    /// fallback, e.g. no `rustc` on the host).
    native_active: bool,
}

struct EnsembleReport {
    name: &'static str,
    instances: usize,
    recompile_ms: f64,
    parametric_ms: f64,
    /// Same compile-once pipeline with 4-lane integration (single worker).
    laned4_ms: f64,
    /// 4-lane integration with the readout forced scalar-per-instance —
    /// the pre-laned-readout pipeline (CNN only, where readout dominates
    /// the tail).
    laned4_scalar_readout_ms: Option<f64>,
}

/// The lane-voting adaptive solver vs the scalar PI controller on a
/// Dormand–Prince ensemble (integration only, no readout).
struct VotingReport {
    name: &'static str,
    instances: usize,
    scalar_dp_ms: f64,
    voting_dp4_ms: f64,
}

/// The native-codegen backend vs the interpreter on a 4-lane parametric
/// ensemble (same fused program, same lane grouping — only the instruction
/// loops differ).
struct NativeEnsembleReport {
    name: &'static str,
    instances: usize,
    laned4_interp_ms: f64,
    laned4_native_ms: f64,
    native_active: bool,
}

/// The streaming reduction path (`EnsembleRun::reduce`) vs materializing
/// every trajectory and reducing afterwards, on the CNN workload.
struct StreamingReport {
    name: &'static str,
    instances: usize,
    streaming_ms: f64,
    materialized_ms: f64,
    /// Fixed per-worker accumulator footprint of the streaming path —
    /// deterministic and scale-independent, gated by `bench_check`.
    accumulator_bytes: usize,
    /// Bytes of trajectory sample storage the materializing path holds
    /// live at once for the same ensemble — the peak-RSS proxy (grows
    /// linearly with the instance count; the streaming path does not).
    materialized_bytes: usize,
}

/// Static-analysis summary of one workload's emitted programs (RHS,
/// observables, and Jacobian combined). `dead_instrs` and
/// `verifier_errors` are structural invariants — zero for every program
/// the builder emits — and `bench_check` gates them at zero; the warning
/// counts are informational.
struct AnalysisReport {
    name: &'static str,
    dead_instrs: usize,
    verifier_errors: usize,
    domain_warnings: usize,
    determinism_errors: usize,
}

fn measure_analysis() -> Vec<AnalysisReport> {
    workloads()
        .into_iter()
        .map(|w| {
            let jac = w.sys.jacobian();
            let reports = [
                ark_expr::analyze(w.sys.rhs_program()),
                ark_expr::analyze(w.sys.obs_program()),
                ark_expr::analyze(jac.program()),
            ];
            AnalysisReport {
                name: w.name,
                dead_instrs: reports.iter().map(|r| r.dead_instrs()).sum(),
                verifier_errors: reports.iter().map(|r| r.hard_errors()).sum(),
                domain_warnings: reports.iter().map(|r| r.domain.len()).sum(),
                determinism_errors: reports.iter().map(|r| r.determinism_errors()).sum(),
            }
        })
        .collect()
}

fn workloads() -> Vec<Workload> {
    let base = cnn_language();
    let hw = hw_cnn_language(&base);
    let input = Image::test_blob(8, 6);
    let cnn = build_cnn(&hw, &input, &EDGE_TEMPLATE, NonIdeality::GMismatch, 1).unwrap();
    let cnn_sys = CompiledSystem::compile(&hw, &cnn.graph).unwrap();

    let tbase = tln_language();
    let gmc = gmc_tln_language(&tbase);
    let cfg = TlineConfig {
        mismatch: MismatchKind::Gm,
        ..TlineConfig::default()
    };
    let tln = linear_tline(&gmc, 26, &cfg, 1).unwrap();
    let tln_sys = CompiledSystem::compile(&gmc, &tln).unwrap();

    let obase = obc_language();
    let ofs = ofs_obc_language(&obase);
    let problem = MaxCutProblem::random(6, 3);
    let obc = ark_paradigms::maxcut::build_maxcut_network(&ofs, &problem, CouplingKind::Offset, 3)
        .unwrap();
    let obc_sys = CompiledSystem::compile(&ofs, &obc).unwrap();

    vec![
        Workload {
            name: "cnn_fig11",
            sys: cnn_sys,
        },
        Workload {
            name: "tln_fig4",
            sys: tln_sys,
        },
        Workload {
            name: "obc_table1",
            sys: obc_sys,
        },
    ]
}

fn measure_ensembles(n: usize) -> Vec<EnsembleReport> {
    let mut out = Vec::new();
    let seeds = seed_range(0, n);
    // All rows are single-worker so the laned column isolates the
    // lane-parallel interpreter's speedup from thread parallelism.
    let scalar = Ensemble::serial().with_lanes(1);
    let laned = Ensemble::serial().with_lanes(4);

    // CNN: recompile-per-instance vs compile-once parametric (scalar and
    // 4-lane integration), with the 4-lane pipeline measured both with the
    // historical scalar-per-instance readout and the laned group readout.
    let base = cnn_language();
    let hw = hw_cnn_language(&base);
    let input = Image::from_ascii(&["....", ".##.", ".##.", "...."]);
    let t = Instant::now();
    for &seed in &seeds {
        let inst = build_cnn(&hw, &input, &EDGE_TEMPLATE, NonIdeality::GMismatch, seed).unwrap();
        black_box(run_cnn(&hw, &inst, 1.0, &[]).unwrap());
    }
    let recompile_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut cnn_ms = [0.0f64; 2];
    for (slot, ens) in [(0usize, &scalar), (1usize, &laned)] {
        let t = Instant::now();
        black_box(
            run_cnn_ensemble(
                &hw,
                &input,
                &EDGE_TEMPLATE,
                NonIdeality::GMismatch,
                1.0,
                &[],
                &seeds,
                ens,
            )
            .unwrap(),
        );
        cnn_ms[slot] = t.elapsed().as_secs_f64() * 1e3;
    }
    let t = Instant::now();
    black_box(
        run_cnn_ensemble_scalar_readout(
            &hw,
            &input,
            &EDGE_TEMPLATE,
            NonIdeality::GMismatch,
            1.0,
            &[],
            &seeds,
            &laned,
        )
        .unwrap(),
    );
    let cnn_laned_scalar_readout_ms = t.elapsed().as_secs_f64() * 1e3;
    out.push(EnsembleReport {
        name: "cnn_fig11",
        instances: n,
        recompile_ms,
        parametric_ms: cnn_ms[0],
        laned4_ms: cnn_ms[1],
        laned4_scalar_readout_ms: Some(cnn_laned_scalar_readout_ms),
    });

    // TLN: recompile-per-instance vs compile-once parametric.
    let tbase = tln_language();
    let gmc = gmc_tln_language(&tbase);
    let cfg = TlineConfig {
        mismatch: MismatchKind::Gm,
        ..TlineConfig::default()
    };
    let (segments, t_end, dt, stride) = (8, 2e-8, 5e-11, 16);
    let t = Instant::now();
    for &seed in &seeds {
        let g = linear_tline(&gmc, segments, &cfg, seed).unwrap();
        let sys = CompiledSystem::compile(&gmc, &g).unwrap();
        black_box(
            Rk4 { dt }
                .integrate(&sys.bind(), 0.0, &sys.initial_state(), t_end, stride)
                .unwrap(),
        );
    }
    let recompile_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut tln_ms = [0.0f64; 2];
    for (slot, ens) in [(0usize, &scalar), (1usize, &laned)] {
        let t = Instant::now();
        black_box(
            tline_mismatch_ensemble(&gmc, segments, &cfg, t_end, dt, stride, &seeds, ens).unwrap(),
        );
        tln_ms[slot] = t.elapsed().as_secs_f64() * 1e3;
    }
    out.push(EnsembleReport {
        name: "tln_fig4",
        instances: n,
        recompile_ms,
        parametric_ms: tln_ms[0],
        laned4_ms: tln_ms[1],
        laned4_scalar_readout_ms: None,
    });

    // OBC Table 1 cell: per-trial solve (rebuild + recompile) vs the
    // memoized per-topology-class sparse templates. Run at a multiple of
    // the base instance count — class memoization (and per-class lane
    // grouping) only amortizes once trials outnumber the distinct
    // topologies, which is the regime every real Table 1 cell runs in
    // (1000 trials vs ≤ 63 classes at n = 4).
    let obase = obc_language();
    let ofs = ofs_obc_language(&obase);
    let d = 0.1 * PI;
    let obc_trials = 32 * n;
    let obc_seeds = seed_range(0, obc_trials);
    let t = Instant::now();
    for &seed in &obc_seeds {
        let problem = MaxCutProblem::random(4, seed);
        black_box(solve(&ofs, &problem, CouplingKind::Offset, d, seed).unwrap());
    }
    let recompile_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut obc_ms = [0.0f64; 2];
    for (slot, ens) in [(0usize, &scalar), (1usize, &laned)] {
        let t = Instant::now();
        black_box(table1_cell_with(&ofs, CouplingKind::Offset, d, 4, obc_trials, 0, ens).unwrap());
        obc_ms[slot] = t.elapsed().as_secs_f64() * 1e3;
    }
    out.push(EnsembleReport {
        name: "obc_table1",
        instances: obc_trials,
        recompile_ms,
        parametric_ms: obc_ms[0],
        laned4_ms: obc_ms[1],
        laned4_scalar_readout_ms: None,
    });

    out
}

/// The lane-voting Dormand–Prince ensemble vs the scalar PI path on the
/// CNN workload (integration only — final state readout).
fn measure_voting(n: usize) -> Vec<VotingReport> {
    let seeds = seed_range(0, n);
    let base = cnn_language();
    let hw = hw_cnn_language(&base);
    let input = Image::from_ascii(&["....", ".##.", ".##.", "...."]);
    let pcnn = build_cnn_parametric(&hw, &input, &EDGE_TEMPLATE, NonIdeality::GMismatch).unwrap();
    let sys = CompiledSystem::compile_parametric(&hw, &pcnn.pgraph).unwrap();
    let dp = DormandPrince::new(1e-6, 1e-9);
    let run = |ens: &Ensemble, voting: bool| {
        let t = Instant::now();
        if voting {
            black_box(
                ens.run(&sys, &dp.voting(), &seeds, 0.0, 1.0)
                    .stride(5)
                    .trajectories()
                    .unwrap(),
            );
        } else {
            black_box(
                ens.run(&sys, &dp, &seeds, 0.0, 1.0)
                    .stride(5)
                    .trajectories()
                    .unwrap(),
            );
        }
        t.elapsed().as_secs_f64() * 1e3
    };
    let serial4 = Ensemble::serial().with_lanes(4);
    vec![VotingReport {
        name: "cnn_fig11",
        instances: n,
        scalar_dp_ms: run(&serial4, false),
        voting_dp4_ms: run(&serial4, true),
    }]
}

/// Interpreter vs native codegen on the 4-lane parametric CNN ensemble.
/// Two independently compiled systems over the same parametric graph, one
/// per backend, so each carries its own dispatch choice end to end.
fn measure_native(n: usize) -> Vec<NativeEnsembleReport> {
    let seeds = seed_range(0, n);
    let base = cnn_language();
    let hw = hw_cnn_language(&base);
    let input = Image::from_ascii(&["....", ".##.", ".##.", "...."]);
    let pcnn = build_cnn_parametric(&hw, &input, &EDGE_TEMPLATE, NonIdeality::GMismatch).unwrap();
    let interp = CompiledSystem::compile_parametric(&hw, &pcnn.pgraph)
        .unwrap()
        .with_backend(Backend::Interp);
    let native = CompiledSystem::compile_parametric(&hw, &pcnn.pgraph)
        .unwrap()
        .with_backend(Backend::Native);
    let solver = Rk4 { dt: 2e-3 };
    let ens = Ensemble::serial().with_lanes(4);
    let run = |sys: &CompiledSystem| {
        let t = Instant::now();
        black_box(
            ens.run(sys, &solver, &seeds, 0.0, 1.0)
                .stride(5)
                .trajectories()
                .unwrap(),
        );
        t.elapsed().as_secs_f64() * 1e3
    };
    // Warm both paths once so the native row never times the one-off
    // kernel compilation (cached on disk afterwards anyway).
    let warm = seed_range(0, 4.min(n));
    for sys in [&interp, &native] {
        black_box(
            ens.run(sys, &solver, &warm, 0.0, 0.01)
                .stride(5)
                .trajectories()
                .unwrap(),
        );
    }
    vec![NativeEnsembleReport {
        name: "cnn_fig11",
        instances: n,
        laned4_interp_ms: run(&interp),
        laned4_native_ms: run(&native),
        native_active: native.native_active(),
    }]
}

/// Streaming reduction vs materialize-then-reduce on the CNN workload:
/// same integrations, same online statistics, but the streaming path holds
/// only one fixed-size accumulator per worker while the materializing path
/// keeps every trajectory alive until the reduction.
fn measure_streaming(n: usize) -> Vec<StreamingReport> {
    use ark_ode::SolveError;
    use ark_sim::reduce::{
        premap, reduce_materialized, Histogram, MomentStats, Moments, Quantiles, Yield,
        YieldCounter,
    };
    let seeds = seed_range(0, n);
    let base = cnn_language();
    let hw = hw_cnn_language(&base);
    let input = Image::from_ascii(&["....", ".##.", ".##.", "...."]);
    let pcnn = build_cnn_parametric(&hw, &input, &EDGE_TEMPLATE, NonIdeality::GMismatch).unwrap();
    let sys = CompiledSystem::compile_parametric(&hw, &pcnn.pgraph).unwrap();
    let solver = Rk4 { dt: 2e-3 };
    let bins = 64usize;
    let reducer = (
        Moments,
        Quantiles::new(-2.0, 2.0, bins),
        premap(|v: f64| v > 0.0, YieldCounter),
    );
    // The fixed per-worker streaming state: one accumulator tuple, with
    // the histogram's bin payload counted explicitly.
    let accumulator_bytes = std::mem::size_of::<MomentStats>()
        + std::mem::size_of::<Histogram>()
        + bins * std::mem::size_of::<u64>()
        + std::mem::size_of::<Yield>();
    let ens = Ensemble::serial().with_lanes(4);
    let t = Instant::now();
    black_box(
        ens.run(&sys, &solver, &seeds, 0.0, 1.0)
            .reduce(
                |snap, _scratch| Ok::<_, SolveError>(snap.state[0]),
                &reducer,
            )
            .unwrap(),
    );
    let streaming_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let trajectories = ens
        .run(&sys, &solver, &seeds, 0.0, 1.0)
        .stride(5)
        .trajectories()
        .unwrap();
    let endpoints: Vec<f64> = trajectories
        .iter()
        .map(|tr| tr.last().unwrap().1[0])
        .collect();
    black_box(reduce_materialized(&reducer, &endpoints));
    let materialized_ms = t.elapsed().as_secs_f64() * 1e3;
    let per_sample = (sys.num_states() + 1) * std::mem::size_of::<f64>();
    let materialized_bytes: usize = trajectories.iter().map(|tr| tr.len() * per_sample).sum();
    vec![StreamingReport {
        name: "cnn_fig11",
        instances: n,
        streaming_ms,
        materialized_ms,
        accumulator_bytes,
        materialized_bytes,
    }]
}

/// The implicit-vs-explicit comparison on the stiff Van der Pol benchmark
/// (μ = 1000, t ∈ [0, 3]): compiled-Jacobian program size, step and Newton
/// counts (all deterministic and machine-independent — `bench_check` gates
/// them), plus wall-clock ns/accepted-step for both solvers.
struct StiffReport {
    name: &'static str,
    states: usize,
    rhs_instrs: usize,
    jacobian_instrs: usize,
    jacobian_nnz: usize,
    trbdf2_accepted: usize,
    trbdf2_rejected: usize,
    trbdf2_newton_iters: usize,
    trbdf2_rhs_evals: usize,
    dp45_accepted: usize,
    dp45_rejected: usize,
    dp45_rhs_evals: usize,
    trbdf2_ms: f64,
    dp45_ms: f64,
}

/// Van der Pol at μ = 1000 over t ∈ [0, 3] at rtol 1e-6 / atol 1e-9, same
/// compiled system for both solvers. The workload is tiny (two states, ~90
/// implicit steps) so it runs at full span even in smoke mode — which is
/// what keeps the gated counts identical between CI smoke runs and the
/// committed paper-scale baseline.
fn measure_stiff() -> Vec<StiffReport> {
    use ark_paradigms::stiff::{vdp_language, vdp_oscillator};
    let lang = vdp_language();
    let g = vdp_oscillator(&lang, 1000.0).unwrap();
    let sys = CompiledSystem::compile(&lang, &g).unwrap();
    let jac = sys.jacobian();
    let (jacobian_instrs, jacobian_nnz) = (jac.instrs(), jac.nnz());
    let y0 = sys.initial_state();
    let bound = sys.bind();
    let (t0, t1) = (0.0, 3.0);

    let implicit = TrBdf2::new(1e-6, 1e-9);
    black_box(implicit.integrate(&bound, t0, &y0, t1, usize::MAX).unwrap());
    let t = Instant::now();
    let tr = implicit.integrate(&bound, t0, &y0, t1, usize::MAX).unwrap();
    let trbdf2_ms = t.elapsed().as_secs_f64() * 1e3;

    let explicit = DormandPrince::new(1e-6, 1e-9);
    black_box(explicit.integrate(&bound, t0, &y0, t1).unwrap());
    let t = Instant::now();
    let dp = explicit.integrate(&bound, t0, &y0, t1).unwrap();
    let dp45_ms = t.elapsed().as_secs_f64() * 1e3;

    vec![StiffReport {
        name: "vdp_mu1000",
        states: sys.num_states(),
        rhs_instrs: sys.rhs_instruction_count(),
        jacobian_instrs,
        jacobian_nnz,
        trbdf2_accepted: tr.stats().accepted,
        trbdf2_rejected: tr.stats().rejected,
        trbdf2_newton_iters: tr.stats().newton_iters,
        trbdf2_rhs_evals: tr.stats().rhs_evals,
        dp45_accepted: dp.stats().accepted,
        dp45_rejected: dp.stats().rejected,
        dp45_rhs_evals: dp.stats().rhs_evals,
        trbdf2_ms,
        dp45_ms,
    }]
}

/// Fault-tolerance accounting on seeded-fault ensembles. Outcome counts
/// are pure functions of the seeds and the fault plans, so `bench_check`
/// gates them: `failed` growing means instances the recovery chain used to
/// absorb now abort, `recovered`/`retry_attempts` growing means the primary
/// solver started failing on instances it used to handle.
struct FaultRecoveryReport {
    name: &'static str,
    instances: usize,
    completed: u64,
    recovered: u64,
    failed: u64,
    retry_attempts: u64,
    ms: f64,
}

/// Two seeded-fault ensembles at a **fixed** 256-seed scale — deliberately
/// independent of the smoke-mode env knobs, so the gated outcome counts
/// are identical between CI smoke runs and the committed paper-scale
/// baseline (mirroring `measure_stiff`).
fn measure_fault_recovery() -> Vec<FaultRecoveryReport> {
    use ark_ode::SolveError;
    use ark_paradigms::cnn::{hw_cnn_language_sigma, run_cnn_yield_with};
    use ark_paradigms::tln::linear_tline_parametric;
    use ark_sim::reduce::Moments;
    use ark_sim::{FaultMode, FaultPlan, RecoveryPolicy};
    let mut out = Vec::new();

    // Fig11-style CNN yield with NaN-blowup faults: unrecoverable by
    // construction, so `failed` pins the plan's hit count exactly and
    // every faulty group exercises lane demotion.
    let base = cnn_language();
    let hw = hw_cnn_language_sigma(&base, 0.05);
    let input = Image::test_blob(6, 6);
    let seeds = seed_range(11, 256);
    let plans = [FaultPlan::one_in(16, FaultMode::Blowup)];
    let ens = Ensemble::serial().with_lanes(4);
    let t = Instant::now();
    let y = run_cnn_yield_with(
        &hw,
        &input,
        &EDGE_TEMPLATE,
        NonIdeality::GMismatch,
        2.0,
        &seeds,
        &ens,
        &RecoveryPolicy::default(),
        &plans,
    )
    .unwrap();
    out.push(FaultRecoveryReport {
        name: "cnn_blowup",
        instances: seeds.len(),
        completed: y.recovery.completed,
        recovered: y.recovery.recovered,
        failed: y.recovery.failed,
        retry_attempts: y.recovery.retry_attempts,
        ms: t.elapsed().as_secs_f64() * 1e3,
    });

    // GmC t-line with stiffened (finite) faulty instances: the fixed-step
    // primary blows up, the adaptive fallback chain rescues every hit —
    // `recovered` and `retry_attempts` gate the chain itself. `min_dt` is
    // scaled to the line's ~30 ns span (see the `RecoveryPolicy` docs).
    let gmc = gmc_tln_language(&tln_language());
    let cfg = TlineConfig {
        mismatch: MismatchKind::Cint,
        ..TlineConfig::default()
    };
    let pg = linear_tline_parametric(&gmc, 6, &cfg).unwrap();
    let sys = CompiledSystem::compile_parametric(&gmc, &pg).unwrap();
    let seeds = seed_range(0, 256);
    let plans = [FaultPlan::one_in(16, FaultMode::Stiffen { factor: 1e-2 })];
    let policy = RecoveryPolicy {
        min_dt: 1e-16,
        ..RecoveryPolicy::default()
    };
    let t = Instant::now();
    let (_, report) = Ensemble::serial()
        .with_lanes(4)
        .run(&sys, &Rk4 { dt: 5e-11 }, &seeds, 0.0, 3e-8)
        .prep(|seed| {
            let mut params = sys.sample_params(seed);
            ark_sim::faultpoint::corrupt_all(&plans, seed, &mut params, &mut []);
            let y0 = sys.initial_state_for(&params);
            (params, y0)
        })
        .with_recovery(&policy)
        .reduce(
            |snap, _scratch| Ok::<_, SolveError>(snap.state[0]),
            &Moments,
        )
        .unwrap();
    out.push(FaultRecoveryReport {
        name: "tln_stiffen",
        instances: seeds.len(),
        completed: report.completed,
        recovered: report.recovered,
        failed: report.failed,
        retry_attempts: report.retry_attempts,
        ms: t.elapsed().as_secs_f64() * 1e3,
    });
    out
}

/// The first unsigned integer following `key` in `text` (tiny scan over
/// our own generated JSON; no parser needed).
fn scan_u64(text: &str, key: &str) -> Option<u64> {
    let at = text.find(key)? + key.len();
    let digits: String = text[at..]
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Where this run's report may be written. Smoke mode (any env override
/// set) always goes to `target/BENCH_rhs.json`; a full-scale run refreshes
/// the committed repo-root baseline unless the existing file records a
/// *larger* scale (more timed evaluations or more ensemble instances), in
/// which case the run is diverted to `target/` too — set
/// `ARK_BENCH_FORCE=1` to overwrite anyway.
fn report_path(root: &str, smoke: bool, evals: usize, instances: usize) -> String {
    let committed = format!("{root}/BENCH_rhs.json");
    let diverted = format!("{root}/target/BENCH_rhs.json");
    if smoke {
        println!("smoke mode: writing {diverted} (committed baseline untouched)");
        return diverted;
    }
    if std::env::var("ARK_BENCH_FORCE").as_deref() == Ok("1") {
        return committed;
    }
    if let Ok(existing) = std::fs::read_to_string(&committed) {
        let old_evals = scan_u64(&existing, "\"rhs_evals\":");
        let old_inst = scan_u64(&existing, "\"instances\":");
        if old_evals.is_some_and(|e| e > evals as u64)
            || old_inst.is_some_and(|i| i > instances as u64)
        {
            println!(
                "refusing to overwrite larger-scale {committed} \
                 (set ARK_BENCH_FORCE=1 to force); writing {diverted}"
            );
            return diverted;
        }
    }
    committed
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    reports: &[WorkloadReport],
    ensembles: &[EnsembleReport],
    native_ens: &[NativeEnsembleReport],
    voting: &[VotingReport],
    streaming: &[StreamingReport],
    stiff: &[StiffReport],
    fault: &[FaultRecoveryReport],
    analysis: &[AnalysisReport],
    evals: usize,
    smoke: bool,
) {
    let mut j = String::from("{\n");
    let _ = writeln!(
        j,
        "  \"generated_by\": \"cargo bench -p ark-bench --bench rhs\","
    );
    let instances = ensembles.first().map_or(0, |e| e.instances);
    let _ = writeln!(
        j,
        "  \"config\": {{\n    \"rhs_evals\": {evals},\n    \"ensemble_instances\": {instances},\n    \
         \"smoke\": {smoke}\n  }},"
    );
    let _ = writeln!(j, "  \"workloads\": {{");
    for (i, r) in reports.iter().enumerate() {
        let comma = if i + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    \"{}\": {{\n      \"states\": {},\n      \"algebraics\": {},\n      \
             \"legacy_instructions_per_rhs\": {},\n      \"fused_instructions_per_rhs\": {},\n      \
             \"fused_prologue_instructions\": {},\n      \"instruction_reduction\": {:.2},\n      \
             \"fused_registers\": {},\n      \"fused_pooled_consts\": {},\n      \
             \"legacy_ns_per_rhs\": {:.1},\n      \"fused_ns_per_rhs\": {:.1},\n      \
             \"rhs_speedup\": {:.2},\n      \"native_instructions_per_rhs\": {},\n      \
             \"native_ns_per_rhs\": {:.1},\n      \"native_speedup\": {:.2},\n      \
             \"native_speedup_x1000\": {},\n      \"native_active\": {}\n    }}{}",
            r.name,
            r.states,
            r.algebraics,
            r.legacy_instrs,
            r.fused_instrs,
            r.fused_prologue,
            r.legacy_instrs as f64 / r.fused_instrs.max(1) as f64,
            r.fused_regs,
            r.fused_consts,
            r.legacy_ns,
            r.fused_ns,
            r.legacy_ns / r.fused_ns.max(1e-9),
            r.native_instrs,
            r.native_ns,
            r.fused_ns / r.native_ns.max(1e-9),
            (1000.0 * r.fused_ns / r.native_ns.max(1e-9)).round() as u64,
            u8::from(r.native_active),
            comma
        );
    }
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"ensembles\": {{");
    for (i, e) in ensembles.iter().enumerate() {
        let comma = if i + 1 < ensembles.len() { "," } else { "" };
        // The CNN row carries the laned-readout A/B: `laned4_ms` is the
        // full laned pipeline (laned integration + laned group readout),
        // `laned4_scalar_readout_ms` the historical scalar-readout form.
        let readout = match e.laned4_scalar_readout_ms {
            Some(ms) => format!(
                "\n      \"laned4_scalar_readout_ms\": {:.1},\n      \
                 \"laned_readout_speedup\": {:.2},",
                ms,
                ms / e.laned4_ms.max(1e-9)
            ),
            None => String::new(),
        };
        let _ = writeln!(
            j,
            "    \"{}\": {{\n      \"instances\": {},\n      \"recompile_per_instance_ms\": {:.1},\n      \
             \"compile_once_parametric_ms\": {:.1},\n      \"ensemble_speedup\": {:.2},{}\n      \
             \"laned4_ms\": {:.1},\n      \"laned_speedup\": {:.2}\n    }}{}",
            e.name,
            e.instances,
            e.recompile_ms,
            e.parametric_ms,
            e.recompile_ms / e.parametric_ms.max(1e-9),
            readout,
            e.laned4_ms,
            e.parametric_ms / e.laned4_ms.max(1e-9),
            comma
        );
    }
    let _ = writeln!(j, "  }},");
    // Native-codegen A/B on the laned ensemble path. `native_active` (0/1)
    // records whether a generated kernel ran or the row silently measured
    // the interpreter fallback — timings from a fallback run are honest
    // but the speedup is then ~1.0 by construction.
    let _ = writeln!(j, "  \"native_ensemble\": {{");
    for (i, ne) in native_ens.iter().enumerate() {
        let comma = if i + 1 < native_ens.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    \"{}\": {{\n      \"instances\": {},\n      \"laned4_interp_ms\": {:.1},\n      \
             \"laned4_native_ms\": {:.1},\n      \"native_ensemble_speedup\": {:.2},\n      \
             \"native_active\": {}\n    }}{}",
            ne.name,
            ne.instances,
            ne.laned4_interp_ms,
            ne.laned4_native_ms,
            ne.laned4_interp_ms / ne.laned4_native_ms.max(1e-9),
            u8::from(ne.native_active),
            comma
        );
    }
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"voting_dp\": {{");
    for (i, v) in voting.iter().enumerate() {
        let comma = if i + 1 < voting.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    \"{}\": {{\n      \"instances\": {},\n      \"scalar_dp_ms\": {:.1},\n      \
             \"voting_dp4_ms\": {:.1},\n      \"voting_speedup\": {:.2}\n    }}{}",
            v.name,
            v.instances,
            v.scalar_dp_ms,
            v.voting_dp4_ms,
            v.scalar_dp_ms / v.voting_dp4_ms.max(1e-9),
            comma
        );
    }
    let _ = writeln!(j, "  }},");
    // `accumulator_bytes` is the streaming path's fixed per-worker state —
    // deterministic and machine-independent, so bench_check gates it. The
    // timings and the materialized-bytes proxy scale with the instance
    // count and stay ungated.
    let _ = writeln!(j, "  \"streaming_ensemble\": {{");
    for (i, s) in streaming.iter().enumerate() {
        let comma = if i + 1 < streaming.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    \"{}\": {{\n      \"instances\": {},\n      \"accumulator_bytes\": {},\n      \
             \"ns_per_instance\": {:.0},\n      \"streaming_ms\": {:.1},\n      \
             \"materialized_ms\": {:.1},\n      \"materialized_bytes\": {}\n    }}{}",
            s.name,
            s.instances,
            s.accumulator_bytes,
            s.streaming_ms * 1e6 / s.instances.max(1) as f64,
            s.streaming_ms,
            s.materialized_ms,
            s.materialized_bytes,
            comma
        );
    }
    let _ = writeln!(j, "  }},");
    // The stiff section's counts are deterministic (fixed-point float
    // arithmetic, no threading) and scale-independent, so bench_check
    // gates them even from smoke runs; only the ms timings float.
    let _ = writeln!(j, "  \"stiff_vdp\": {{");
    for (i, s) in stiff.iter().enumerate() {
        let comma = if i + 1 < stiff.len() { "," } else { "" };
        let implicit_steps = s.trbdf2_accepted + s.trbdf2_rejected;
        let explicit_steps = s.dp45_accepted + s.dp45_rejected;
        let _ = writeln!(
            j,
            "    \"{}\": {{\n      \"states\": {},\n      \"rhs_instructions\": {},\n      \
             \"jacobian_instructions\": {},\n      \"jacobian_nnz\": {},\n      \
             \"trbdf2_accepted_steps\": {},\n      \"trbdf2_rejected_steps\": {},\n      \
             \"trbdf2_newton_iters\": {},\n      \"trbdf2_rhs_evals\": {},\n      \
             \"dp45_accepted_steps\": {},\n      \"dp45_rejected_steps\": {},\n      \
             \"dp45_rhs_evals\": {},\n      \"step_advantage\": {:.1},\n      \
             \"trbdf2_ns_per_step\": {:.0},\n      \"dp45_ns_per_step\": {:.0}\n    }}{}",
            s.name,
            s.states,
            s.rhs_instrs,
            s.jacobian_instrs,
            s.jacobian_nnz,
            s.trbdf2_accepted,
            s.trbdf2_rejected,
            s.trbdf2_newton_iters,
            s.trbdf2_rhs_evals,
            s.dp45_accepted,
            s.dp45_rejected,
            s.dp45_rhs_evals,
            explicit_steps as f64 / implicit_steps.max(1) as f64,
            s.trbdf2_ms * 1e6 / implicit_steps.max(1) as f64,
            s.dp45_ms * 1e6 / explicit_steps.max(1) as f64,
            comma
        );
    }
    let _ = writeln!(j, "  }},");
    // Seeded-fault outcome counts: deterministic (fixed seeds, fixed
    // plans, fixed 256-instance scale even in smoke mode), so bench_check
    // gates all four counters; only the ms timing floats.
    let _ = writeln!(j, "  \"fault_recovery\": {{");
    for (i, f) in fault.iter().enumerate() {
        let comma = if i + 1 < fault.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    \"{}\": {{\n      \"instances\": {},\n      \"completed\": {},\n      \
             \"recovered\": {},\n      \"failed\": {},\n      \"retry_attempts\": {},\n      \
             \"ms\": {:.1}\n    }}{}",
            f.name, f.instances, f.completed, f.recovered, f.failed, f.retry_attempts, f.ms, comma
        );
    }
    let _ = writeln!(j, "  }},");
    // Static-analysis invariants over every emitted program (RHS +
    // observables + Jacobian per workload). All four counts are
    // deterministic; `bench_check` gates `dead_instrs` and
    // `verifier_errors` at zero.
    let _ = writeln!(j, "  \"analysis\": {{");
    for (i, a) in analysis.iter().enumerate() {
        let comma = if i + 1 < analysis.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    \"{}\": {{\n      \"dead_instrs\": {},\n      \"verifier_errors\": {},\n      \
             \"domain_warnings\": {},\n      \"determinism_errors\": {}\n    }}{}",
            a.name,
            a.dead_instrs,
            a.verifier_errors,
            a.domain_warnings,
            a.determinism_errors,
            comma
        );
    }
    let _ = writeln!(j, "  }}\n}}");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = report_path(root, smoke, evals, instances);
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, j).expect("write BENCH_rhs.json");
    println!("wrote {path}");
}

fn bench_rhs(c: &mut Criterion) {
    // Smoke mode = any scale override present in the environment; the
    // report then goes to target/ instead of the committed baseline.
    let smoke = std::env::var("ARK_RHS_EVALS").is_ok()
        || std::env::var("ARK_RHS_ENSEMBLE_N").is_ok()
        || std::env::var("ARK_RHS_STREAM_N").is_ok();
    let evals = env_usize("ARK_RHS_EVALS", 20_000);
    let ensemble_n = env_usize("ARK_RHS_ENSEMBLE_N", 8);
    let stream_n = env_usize("ARK_RHS_STREAM_N", 1024);

    // Second, independently compiled copy of each workload carrying the
    // native-codegen backend (`CompiledSystem` deliberately isn't `Clone`;
    // the builders are deterministic, so the programs are identical).
    let native_systems: Vec<CompiledSystem> = workloads()
        .into_iter()
        .map(|w| w.sys.with_backend(Backend::Native))
        .collect();

    let mut reports = Vec::new();
    for (w, native) in workloads().into_iter().zip(&native_systems) {
        let legacy_instrs = w
            .sys
            .legacy_rhs_instruction_count()
            .expect("non-parametric workload");
        let legacy_ns = time_rhs(&w.sys, true, evals);
        let fused_ns = time_rhs(&w.sys, false, evals);
        let native_ns = time_rhs(native, false, evals);
        println!(
            "{}: {} legacy instrs -> {} fused ({} prologue), \
             {:.0} ns -> {:.0} ns -> {:.0} ns native per rhs ({})",
            w.name,
            legacy_instrs,
            w.sys.rhs_instruction_count(),
            w.sys.rhs_prologue_len(),
            legacy_ns,
            fused_ns,
            native_ns,
            if native.native_active() {
                "compiled kernel"
            } else {
                "interpreter fallback"
            },
        );
        reports.push(WorkloadReport {
            name: w.name,
            states: w.sys.num_states(),
            algebraics: w.sys.num_algebraics(),
            legacy_instrs,
            fused_instrs: w.sys.rhs_instruction_count(),
            fused_prologue: w.sys.rhs_prologue_len(),
            fused_regs: w.sys.rhs_register_count(),
            fused_consts: w.sys.rhs_const_count(),
            legacy_ns,
            fused_ns,
            native_instrs: native.rhs_instruction_count(),
            native_ns,
            native_active: native.native_active(),
        });
        let mut group = c.benchmark_group(format!("rhs/{}", w.name));
        let sys = &w.sys;
        group.bench_function("legacy", |b| {
            let n = sys.num_states();
            let y = sys.initial_state();
            let mut dydt = vec![0.0; n];
            let mut scratch = sys.scratch();
            b.iter(|| {
                sys.rhs_legacy_with(black_box(0.5), &y, &mut dydt, &mut scratch);
                black_box(dydt[0])
            })
        });
        group.bench_function("fused", |b| {
            let n = sys.num_states();
            let y = sys.initial_state();
            let mut dydt = vec![0.0; n];
            let mut scratch = sys.scratch();
            b.iter(|| {
                sys.rhs_with(black_box(0.5), &y, &mut dydt, &mut scratch);
                black_box(dydt[0])
            })
        });
        group.bench_function("native", |b| {
            let n = native.num_states();
            let y = native.initial_state();
            let mut dydt = vec![0.0; n];
            let mut scratch = native.scratch();
            b.iter(|| {
                native.rhs_with(black_box(0.5), &y, &mut dydt, &mut scratch);
                black_box(dydt[0])
            })
        });
        group.finish();
    }
    let ensembles = measure_ensembles(ensemble_n);
    for e in &ensembles {
        println!(
            "{} ensemble x{}: recompile {:.1} ms, parametric {:.1} ms ({:.2}x), \
             4-lane {:.1} ms ({:.2}x over scalar parametric)",
            e.name,
            e.instances,
            e.recompile_ms,
            e.parametric_ms,
            e.recompile_ms / e.parametric_ms.max(1e-9),
            e.laned4_ms,
            e.parametric_ms / e.laned4_ms.max(1e-9),
        );
        if let Some(ms) = e.laned4_scalar_readout_ms {
            println!(
                "{} laned readout: scalar-readout {:.1} ms -> laned {:.1} ms ({:.2}x)",
                e.name,
                ms,
                e.laned4_ms,
                ms / e.laned4_ms.max(1e-9),
            );
        }
    }
    let native_ens = measure_native(ensemble_n);
    for ne in &native_ens {
        println!(
            "{} native ensemble x{}: 4-lane interp {:.1} ms, 4-lane native {:.1} ms ({:.2}x, {})",
            ne.name,
            ne.instances,
            ne.laned4_interp_ms,
            ne.laned4_native_ms,
            ne.laned4_interp_ms / ne.laned4_native_ms.max(1e-9),
            if ne.native_active {
                "compiled kernel"
            } else {
                "interpreter fallback"
            },
        );
    }
    let voting = measure_voting(ensemble_n);
    for v in &voting {
        println!(
            "{} voting-DP x{}: scalar {:.1} ms, 4-lane voting {:.1} ms ({:.2}x)",
            v.name,
            v.instances,
            v.scalar_dp_ms,
            v.voting_dp4_ms,
            v.scalar_dp_ms / v.voting_dp4_ms.max(1e-9),
        );
    }
    let streaming = measure_streaming(stream_n);
    for s in &streaming {
        println!(
            "{} streaming x{}: reduce {:.1} ms ({} accumulator bytes/worker) vs \
             materialize-then-reduce {:.1} ms ({} trajectory bytes)",
            s.name,
            s.instances,
            s.streaming_ms,
            s.accumulator_bytes,
            s.materialized_ms,
            s.materialized_bytes,
        );
    }
    let stiff = measure_stiff();
    for s in &stiff {
        let implicit_steps = s.trbdf2_accepted + s.trbdf2_rejected;
        let explicit_steps = s.dp45_accepted + s.dp45_rejected;
        println!(
            "{} stiff: trbdf2 {} steps / {} newton iters / {} rhs evals ({:.1} ms) vs \
             dp45 {} steps / {} rhs evals ({:.1} ms) — {:.1}x fewer steps; \
             jacobian program {} instrs, {} nonzeros",
            s.name,
            implicit_steps,
            s.trbdf2_newton_iters,
            s.trbdf2_rhs_evals,
            s.trbdf2_ms,
            explicit_steps,
            s.dp45_rhs_evals,
            s.dp45_ms,
            explicit_steps as f64 / implicit_steps.max(1) as f64,
            s.jacobian_instrs,
            s.jacobian_nnz,
        );
    }
    let fault = measure_fault_recovery();
    for f in &fault {
        println!(
            "{} fault recovery x{}: {} completed / {} recovered ({} retries) / {} failed \
             ({:.1} ms)",
            f.name, f.instances, f.completed, f.recovered, f.retry_attempts, f.failed, f.ms,
        );
    }
    let analysis = measure_analysis();
    for a in &analysis {
        println!(
            "{} analysis: {} dead instrs / {} verifier errors / {} domain warnings / \
             {} determinism errors",
            a.name, a.dead_instrs, a.verifier_errors, a.domain_warnings, a.determinism_errors,
        );
    }
    write_json(
        &reports,
        &ensembles,
        &native_ens,
        &voting,
        &streaming,
        &stiff,
        &fault,
        &analysis,
        evals,
        smoke,
    );
}

criterion_group!(benches, bench_rhs);
criterion_main!(benches);
