//! Validation benchmark: ILP-based described-check vs brute-force
//! enumeration (the DESIGN.md ablation), and whole-graph validation time.

use ark_core::validate::{is_described, is_described_brute, validate, ExternRegistry};
use ark_paradigms::tln::{linear_tline, tln_language, TlineConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_validate(c: &mut Criterion) {
    let lang = tln_language();
    let mut group = c.benchmark_group("validate_tline");
    for segments in [6usize, 26] {
        let graph = linear_tline(&lang, segments, &TlineConfig::default(), 0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(segments), &graph, |b, g| {
            b.iter(|| validate(&lang, g, &ExternRegistry::new()).unwrap())
        });
    }
    group.finish();

    // Ablation: ILP vs brute force on one node's accept pattern.
    let graph = linear_tline(&lang, 26, &TlineConfig::default(), 0).unwrap();
    let node = graph.node_id("V_10").unwrap();
    let pattern = &lang.validity_rules_for("V")[0].accept[0];
    let mut group = c.benchmark_group("described_check");
    group.bench_function("ilp", |b| {
        b.iter(|| is_described(&lang, &graph, node, pattern))
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| is_described_brute(&lang, &graph, node, pattern))
    });
    group.finish();
}

criterion_group!(benches, bench_validate);
criterion_main!(benches);
