//! Compilation benchmark: DG -> ODE lowering time vs t-line length.

use ark_core::CompiledSystem;
use ark_paradigms::tln::{linear_tline, tln_language, TlineConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_compile(c: &mut Criterion) {
    let lang = tln_language();
    let mut group = c.benchmark_group("compile_tline");
    for segments in [6usize, 26, 106] {
        let graph = linear_tline(&lang, segments, &TlineConfig::default(), 0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(segments), &graph, |b, g| {
            b.iter(|| CompiledSystem::compile(&lang, g).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
