//! End-to-end OBC max-cut solver benchmark (Table 1 inner loop).

use ark_paradigms::maxcut::{solve, CouplingKind, MaxCutProblem};
use ark_paradigms::obc::{obc_language, ofs_obc_language};
use criterion::{criterion_group, criterion_main, Criterion};
use std::f64::consts::PI;

fn bench_maxcut(c: &mut Criterion) {
    let base = obc_language();
    let ofs = ofs_obc_language(&base);
    let problem = MaxCutProblem::random(4, 7);

    let mut group = c.benchmark_group("maxcut_solve");
    group.sample_size(20);
    group.bench_function("ideal_4v", |b| {
        b.iter(|| solve(&ofs, &problem, CouplingKind::Ideal, 0.01 * PI, 7).unwrap())
    });
    group.bench_function("offset_4v", |b| {
        b.iter(|| solve(&ofs, &problem, CouplingKind::Offset, 0.01 * PI, 7).unwrap())
    });
    let p8 = MaxCutProblem::random(8, 7);
    group.bench_function("ideal_8v", |b| {
        b.iter(|| solve(&ofs, &p8, CouplingKind::Ideal, 0.01 * PI, 7).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_maxcut);
criterion_main!(benches);
