//! Serial-vs-parallel (and scalar-vs-laned) throughput of the `ark-sim`
//! mismatch-ensemble engine.
//!
//! The workload is the §2.4 Monte Carlo: one fabricated GmC-TLN instance
//! per seed on the compile-once parametric path. Criterion benchmarks
//! measure the same N-instance ensemble on one worker at lane widths 1, 4,
//! and 8, and on the full pool; a direct wall-clock comparison prints both
//! speedups (workers and lanes compose) after asserting all configurations
//! produce bit-identical trajectories.
//!
//! Smoke-mode knobs (used by CI so the parallel path runs on every push):
//! `ARK_ENSEMBLE_N` overrides the instance count and
//! `ARK_ENSEMBLE_WORKERS` the parallel worker count, e.g.
//! `ARK_ENSEMBLE_N=4 ARK_ENSEMBLE_WORKERS=2 cargo bench -p ark-bench --bench ensemble`.

use ark_paradigms::tln::{
    gmc_tln_language, tline_mismatch_ensemble, tln_language, MismatchKind, TlineConfig,
};
use ark_sim::{seed_range, Ensemble};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;

const SEGMENTS: usize = 8;
const T_END: f64 = 2e-8;
const DT: f64 = 5e-11;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn run(seeds: &[u64], ens: &Ensemble) -> Vec<ark_ode::Trajectory> {
    let base = tln_language();
    let gmc = gmc_tln_language(&base);
    let cfg = TlineConfig {
        mismatch: MismatchKind::Gm,
        ..TlineConfig::default()
    };
    tline_mismatch_ensemble(&gmc, SEGMENTS, &cfg, T_END, DT, 16, seeds, ens).unwrap()
}

fn bench_ensemble(c: &mut Criterion) {
    let n = env_usize("ARK_ENSEMBLE_N", 64);
    let workers = env_usize("ARK_ENSEMBLE_WORKERS", 4);
    let seeds = seed_range(0, n);

    let mut group = c.benchmark_group(format!("ensemble/{n}-instances"));
    group.bench_function("serial-scalar", |b| {
        b.iter(|| black_box(run(&seeds, &Ensemble::serial().with_lanes(1))))
    });
    group.bench_function("serial-4lane", |b| {
        b.iter(|| black_box(run(&seeds, &Ensemble::serial().with_lanes(4))))
    });
    group.bench_function("serial-8lane", |b| {
        b.iter(|| black_box(run(&seeds, &Ensemble::serial().with_lanes(8))))
    });
    group.bench_function(format!("parallel-{workers}w-4lane"), |b| {
        b.iter(|| black_box(run(&seeds, &Ensemble::new(workers).with_lanes(4))))
    });
    group.finish();

    // Direct wall-clock comparison (single run each), with the determinism
    // guarantee double-checked on the way: full trajectories (every sample
    // value and the solver stats) must be bit-identical across worker
    // counts *and* lane widths, not just the same shape.
    let t = Instant::now();
    let serial = run(&seeds, &Ensemble::serial().with_lanes(1));
    let t_serial = t.elapsed();
    let t = Instant::now();
    let laned = run(&seeds, &Ensemble::serial().with_lanes(4));
    let t_laned = t.elapsed();
    let t = Instant::now();
    let parallel = run(&seeds, &Ensemble::new(workers).with_lanes(4));
    let t_parallel = t.elapsed();
    assert_eq!(
        serial, laned,
        "ensemble trajectories must not depend on lane width"
    );
    assert_eq!(
        laned, parallel,
        "ensemble trajectories must not depend on workers"
    );
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "ensemble {n} instances: scalar serial {:.3}s, 4-lane serial {:.3}s \
         ({:.2}x, worker-independent), {workers} workers x 4 lanes {:.3}s \
         ({:.2}x total; {cpus} CPU(s) available, thread speedup is bounded \
         by the host core count)",
        t_serial.as_secs_f64(),
        t_laned.as_secs_f64(),
        t_serial.as_secs_f64() / t_laned.as_secs_f64().max(1e-12),
        t_parallel.as_secs_f64(),
        t_serial.as_secs_f64() / t_parallel.as_secs_f64().max(1e-12),
    );
}

criterion_group!(benches, bench_ensemble);
criterion_main!(benches);
