//! Circuit-substrate benchmark: netlist synthesis and trapezoidal transient
//! vs the compiled-DG RK4 transient on the same design.

use ark_core::CompiledSystem;
use ark_ode::Rk4;
use ark_paradigms::tln::{linear_tline, tln_language, TlineConfig};
use ark_spice::synth::synthesize;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_spice(c: &mut Criterion) {
    let lang = tln_language();
    let graph = linear_tline(&lang, 10, &TlineConfig::default(), 0).unwrap();
    let netlist = synthesize(&lang, &graph).unwrap();
    let sys = CompiledSystem::compile(&lang, &graph).unwrap();
    let y0 = sys.initial_state();

    let mut group = c.benchmark_group("spice_vs_dg");
    group.bench_function("synthesize", |b| {
        b.iter(|| synthesize(&lang, &graph).unwrap())
    });
    group.bench_function("netlist_trapezoidal", |b| {
        b.iter(|| netlist.transient(2e-8, 4e-11, 10).unwrap())
    });
    group.bench_function("dg_rk4", |b| {
        b.iter(|| {
            Rk4 { dt: 4e-11 }
                .integrate(&sys.bind(), 0.0, &y0, 2e-8, 10)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_spice);
criterion_main!(benches);
