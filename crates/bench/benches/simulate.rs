//! Simulation benchmark: RK4 throughput on the 53-node t-line, plus the
//! tape-vs-tree-walk expression evaluation ablation from DESIGN.md.

use ark_core::CompiledSystem;
use ark_expr::{eval, parse_expr, MapContext, Tape};
use ark_ode::{DormandPrince, OdeSystem, Rk4};
use ark_paradigms::tln::{linear_tline, tln_language, TlineConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_simulate(c: &mut Criterion) {
    let lang = tln_language();
    let graph = linear_tline(&lang, 26, &TlineConfig::default(), 0).unwrap();
    let sys = CompiledSystem::compile(&lang, &graph).unwrap();
    let y0 = sys.initial_state();

    let mut group = c.benchmark_group("simulate_tline_53");
    group.bench_function("rk4_1000_steps", |b| {
        b.iter(|| {
            Rk4 { dt: 2e-11 }
                .integrate(&sys.bind(), 0.0, &y0, 2e-8, usize::MAX)
                .unwrap()
        })
    });
    group.bench_function("dp45_adaptive", |b| {
        b.iter(|| {
            DormandPrince::new(1e-6, 1e-9)
                .integrate(&sys.bind(), 0.0, &y0, 2e-8)
                .unwrap()
        })
    });
    group.bench_function("rhs_only", |b| {
        let mut dydt = vec![0.0; sys.num_states()];
        let mut scratch = sys.scratch();
        b.iter(|| sys.rhs_with(1e-9, &y0, &mut dydt, &mut scratch))
    });
    group.bench_function("rhs_only_bound", |b| {
        let bound = sys.bind();
        let mut dydt = vec![0.0; bound.dim()];
        b.iter(|| bound.rhs(1e-9, &y0, &mut dydt))
    });
    group.finish();

    // Ablation: compiled tape vs tree-walking evaluation of a production-
    // rule-sized expression.
    let e = parse_expr("-1.6e9*2.0*sin(var(s)-var(t)) - 1e9*sin(2*var(s))").unwrap();
    let ctx = MapContext::new().with_var("s", 0.3).with_var("t", 0.9);
    let tape = Tape::compile(&e, &|n| match n {
        "s" => Some(0),
        "t" => Some(1),
        _ => None,
    })
    .unwrap();
    let mut regs = tape.new_registers();
    let slots = [0.3, 0.9];
    let mut group = c.benchmark_group("expr_eval");
    group.bench_function("tape", |b| b.iter(|| tape.eval(&slots, 0.0, &mut regs)));
    group.bench_function("tree_walk", |b| b.iter(|| eval(&e, &ctx).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_simulate);
criterion_main!(benches);
