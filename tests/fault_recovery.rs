//! Fault-tolerance suite: per-instance failure isolation, deterministic
//! recovery, and seeded fault injection on the streaming ensemble path.
//!
//! The properties pinned here are the fault-tolerance layer's contract:
//!
//! * a failing instance is *data* (an [`InstanceOutcome`]), not a run
//!   abort — the surviving population's accumulators are untouched;
//! * which instances fault, which recover, and every accumulator bit are
//!   pure functions of the seeds — identical for worker counts 1/2/8 and
//!   (via the CI lane matrix re-running this file under `ARK_LANES`
//!   1/4/8) for every lane width;
//! * when one lane of a laned group fails, the group demotes to scalar
//!   and the surviving L−1 instances reproduce a `lanes = 1` run of the
//!   same seeds bit for bit;
//! * the non-recovering terminals attribute their first error to the
//!   failing instance's seed ([`EnsembleError`]).

use ark::core::CompiledSystem;
use ark::ode::{Rk4, SolveError};
use ark::paradigms::cnn::{
    cnn_language, hw_cnn_language_sigma, run_cnn_yield_with, NonIdeality, EDGE_TEMPLATE,
};
use ark::paradigms::image::Image;
use ark::sim::reduce::{MomentStats, Moments, Reducer};
use ark::sim::{
    seed_range, Ensemble, EnsembleError, FailureLog, FaultMode, FaultPlan, InstanceOutcome,
    RecoveryPolicy, RecoveryReport,
};
use proptest::prelude::*;

/// One compiled parametric RC-decay design: `dv/dt = -v / tau` with `tau`
/// and the initial value as per-seed parameters. Unlike the saturating
/// CNN, its rate is parameter-controlled, so a [`FaultMode::Stiffen`]
/// plan genuinely destabilizes the fixed-step primary solver (and the
/// adaptive fallback chain genuinely rescues it).
fn decay_system() -> (ark::core::lang::Language, CompiledSystem) {
    use ark::core::func::GraphBuilder;
    use ark::core::lang::{EdgeType, LanguageBuilder, NodeType, ProdRule, Reduction};
    use ark::core::types::SigType;
    use ark::expr::parse_expr;
    let lang = LanguageBuilder::new("rc")
        .node_type(
            NodeType::new("V", 1, Reduction::Sum)
                .attr("tau", SigType::real(0.0, 100.0))
                .init_default(SigType::real(-100.0, 100.0), 1.0),
        )
        .edge_type(EdgeType::new("E"))
        .prod(ProdRule::new(
            ("e", "E"),
            ("s", "V"),
            ("s", "V"),
            "s",
            parse_expr("-var(s)/s.tau").unwrap(),
        ))
        .finish()
        .unwrap();
    let mut b = GraphBuilder::new_parametric(&lang);
    b.node("v", "V").unwrap();
    b.set_attr_param("v", "tau", 1.0).unwrap();
    b.set_init_param("v", 0, 1.0).unwrap();
    b.edge("self", "E", "v", "v").unwrap();
    let pg = b.finish_parametric().unwrap();
    let sys = CompiledSystem::compile_parametric(&lang, &pg).unwrap();
    (lang, sys)
}

fn decay_params(sys: &CompiledSystem, seed: u64) -> Vec<f64> {
    let mut p = sys.nominal_params();
    p[sys.param_index("v", "tau").unwrap()] = 0.25 + 0.0625 * (seed % 31) as f64;
    p[sys.param_index_init("v", 0).unwrap()] = 1.0 + 0.5 * (seed % 7) as f64;
    p
}

/// Run the faulted decay ensemble under `workers`/`lanes` and reduce the
/// final states through [`Moments`]. `lanes == 0` keeps the ensemble's
/// default (env-driven) lane width so the CI lane matrix varies it.
fn faulted_decay_run(
    sys: &CompiledSystem,
    seeds: &[u64],
    plans: &[FaultPlan],
    policy: &RecoveryPolicy,
    workers: usize,
    lanes: usize,
) -> (MomentStats, RecoveryReport) {
    let ens = Ensemble::new(workers);
    let ens = if lanes == 0 {
        ens
    } else {
        ens.with_lanes(lanes)
    };
    ens.run(sys, &Rk4 { dt: 1e-2 }, seeds, 0.0, 1.0)
        .prep(|seed| {
            let mut params = decay_params(sys, seed);
            ark::sim::faultpoint::corrupt_all(plans, seed, &mut params, &mut []);
            let y0 = sys.initial_state_for(&params);
            (params, y0)
        })
        .with_recovery(policy)
        .reduce(
            |snap, _scratch| Ok::<_, SolveError>(snap.state[0]),
            &Moments,
        )
        .unwrap()
}

fn assert_moments_bits(a: &MomentStats, b: &MomentStats, cx: &str) {
    assert_eq!(a.count, b.count, "{cx}: count");
    assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{cx}: mean");
    assert_eq!(a.m2.to_bits(), b.m2.to_bits(), "{cx}: m2");
}

/// A blowup-faulted instance aborts the *non*-recovering streaming
/// terminal with the faulty instance's seed attached — including when the
/// instance sits mid-group on the laned path.
#[test]
fn non_recovering_terminal_attributes_the_failing_seed() {
    let (_lang, sys) = decay_system();
    let seeds = seed_range(0, 64);
    // Hit exactly one seed, away from a group boundary.
    let faulty = 13u64;
    let err: EnsembleError = Ensemble::new(2)
        .run(&sys, &Rk4 { dt: 1e-2 }, &seeds, 0.0, 1.0)
        .prep(|seed| {
            let mut params = decay_params(&sys, seed);
            if seed == faulty {
                params[0] = f64::NAN;
            }
            let y0 = sys.initial_state_for(&params);
            (params, y0)
        })
        .reduce(|snap, _| Ok::<_, EnsembleError>(snap.state[0]), &Moments)
        .unwrap_err();
    assert_eq!(err.seed, faulty);
    assert!(
        err.source.time().is_some(),
        "a NaN-parameter instance fails inside the drive loop: {:?}",
        err.source
    );
    // The typed error chains to its SolveError source.
    let dyn_err: &dyn std::error::Error = &err;
    assert!(dyn_err.source().is_some());
}

/// Stiffened instances blow up the fixed-step primary, recover under the
/// fallback chain, and the whole faulted run — accumulator bits and
/// outcome counts — is identical for worker counts 1, 2, and 8.
#[test]
fn faulted_ensembles_are_bit_identical_across_worker_counts() {
    let (_lang, sys) = decay_system();
    let seeds = seed_range(0, 512);
    let plans = [
        FaultPlan::one_in(16, FaultMode::Stiffen { factor: 1e-4 }),
        FaultPlan::one_in(64, FaultMode::Blowup).with_salt(7),
    ];
    let policy = RecoveryPolicy::default();
    let reference = faulted_decay_run(&sys, &seeds, &plans, &policy, 1, 0);
    // Blowup seeds that also get stiffened still carry the NaN, so the
    // failed count can only shrink by overlap, never grow.
    assert!(
        reference.1.recovered > 0,
        "stiffen plan must trigger retries"
    );
    assert!(reference.1.failed > 0, "blowup plan must defeat the chain");
    assert!(reference.1.retry_attempts >= reference.1.recovered);
    assert_eq!(reference.1.total(), seeds.len() as u64);
    assert_eq!(reference.0.count, seeds.len() as u64 - reference.1.failed);
    for workers in [2, 8] {
        let run = faulted_decay_run(&sys, &seeds, &plans, &policy, workers, 0);
        assert_moments_bits(&run.0, &reference.0, &format!("workers={workers}"));
        assert_eq!(run.1, reference.1, "workers={workers}");
    }
}

/// Lane-group demotion: a NaN lane fails its whole laned group, the group
/// re-runs scalar, and the surviving instances (plus all outcome
/// accounting) reproduce the `lanes = 1` engine bit for bit.
#[test]
fn lane_demotion_matches_the_scalar_engine_bit_for_bit() {
    let (_lang, sys) = decay_system();
    let seeds = seed_range(0, 128);
    let plans = [
        FaultPlan::one_in(16, FaultMode::Blowup),
        FaultPlan::one_in(16, FaultMode::Stiffen { factor: 1e-4 }).with_salt(3),
    ];
    let policy = RecoveryPolicy::default();
    let scalar = faulted_decay_run(&sys, &seeds, &plans, &policy, 2, 1);
    assert!(scalar.1.failed > 0 && scalar.1.recovered > 0);
    for lanes in [4, 8] {
        let laned = faulted_decay_run(&sys, &seeds, &plans, &policy, 2, lanes);
        assert_moments_bits(&laned.0, &scalar.0, &format!("lanes={lanes}"));
        assert_eq!(laned.1, scalar.1, "lanes={lanes}");
    }
}

/// Retry budgets are real: under `RecoveryPolicy::none()` every stiffened
/// instance that the chain would have rescued is a hard failure instead,
/// with per-kind provenance pointing at the first faulty seed.
#[test]
fn recovery_policy_budgets_decide_the_outcome() {
    let (_lang, sys) = decay_system();
    let seeds = seed_range(0, 256);
    let plans = [FaultPlan::one_in(16, FaultMode::Stiffen { factor: 1e-4 })];
    let faulty = plans[0].count_faulty(&seeds) as u64;
    assert!(faulty > 0);

    let with_chain = faulted_decay_run(&sys, &seeds, &plans, &RecoveryPolicy::default(), 2, 0);
    assert_eq!(with_chain.1.recovered, faulty);
    assert_eq!(with_chain.1.failed, 0);

    let no_retries = faulted_decay_run(&sys, &seeds, &plans, &RecoveryPolicy::none(), 2, 0);
    assert_eq!(no_retries.1.recovered, 0);
    assert_eq!(no_retries.1.failed, faulty);
    assert_eq!(no_retries.1.retry_attempts, 0);
    let first_faulty = *seeds.iter().find(|&&s| plans[0].is_faulty(s)).unwrap();
    let (kind, stats) = no_retries.1.by_kind.iter().next().unwrap();
    assert_eq!(*kind, "non_finite", "fixed-step blowup is a NonFinite");
    assert_eq!(stats.count, faulty);
    assert_eq!(stats.first_seed, first_faulty);

    // Healthy instances are identical under both policies: recovery only
    // ever touches instances whose primary solve failed.
    assert_eq!(with_chain.0.count - faulty, no_retries.0.count);
}

/// The acceptance run: a fig11-style CNN yield ensemble with ≥ 1% of
/// seeds deterministically faulted completes without aborting, reports
/// exact per-kind counts, and is bit-identical across worker counts
/// (and, via the CI matrix, lane widths).
#[test]
fn cnn_yield_with_injected_faults_completes_and_accounts_exactly() {
    let base = cnn_language();
    let hw = hw_cnn_language_sigma(&base, 0.05);
    let input = Image::test_blob(6, 6);
    let seeds = seed_range(11, 256);
    let plans = [FaultPlan::one_in(16, FaultMode::Blowup)];
    let faulty = plans[0].count_faulty(&seeds) as u64;
    assert!(
        faulty as f64 >= seeds.len() as f64 * 0.01,
        "fault plan must hit at least 1% of seeds"
    );
    let policy = RecoveryPolicy::default();
    let mut reference: Option<ark::paradigms::cnn::CnnYield> = None;
    for workers in [1usize, 2, 8] {
        let y = run_cnn_yield_with(
            &hw,
            &input,
            &EDGE_TEMPLATE,
            NonIdeality::GMismatch,
            2.0,
            &seeds,
            &Ensemble::new(workers),
            &policy,
            &plans,
        )
        .unwrap();
        // Exact accounting: every instance has a verdict, NaN parameters
        // defeat every solver in the chain, and nothing else fails.
        assert_eq!(y.recovery.total(), seeds.len() as u64, "workers={workers}");
        assert_eq!(y.recovery.failed, faulty, "workers={workers}");
        assert_eq!(
            y.counts.total,
            seeds.len() as u64 - faulty,
            "workers={workers}: failed instances contribute no sample"
        );
        let first_faulty = *seeds.iter().find(|&&s| plans[0].is_faulty(s)).unwrap();
        assert_eq!(y.recovery.by_kind.len(), 1);
        let stats = y.recovery.by_kind.values().next().unwrap();
        assert_eq!(
            (stats.count, stats.first_seed),
            (faulty, first_faulty),
            "workers={workers}"
        );
        match &reference {
            None => reference = Some(y),
            Some(r) => {
                assert_moments_bits(&y.wrong_pixels, &r.wrong_pixels, &format!("w={workers}"));
                assert_eq!(y.counts, r.counts, "workers={workers}");
                assert_eq!(y.recovery, r.recovery, "workers={workers}");
                assert_eq!(
                    y.wrong_histogram.counts(),
                    r.wrong_histogram.counts(),
                    "workers={workers}"
                );
            }
        }
    }
}

/// Outcome taxonomy sanity on the public enum: recovered instances name
/// the chain entry that rescued them.
#[test]
fn recovered_outcomes_name_the_final_solver() {
    let (_lang, sys) = decay_system();
    let seeds = seed_range(0, 64);
    let plan = FaultPlan::one_in(8, FaultMode::Stiffen { factor: 1e-4 });
    let policy = RecoveryPolicy::default();
    let (outcomes, report) = Ensemble::new(1)
        .run(&sys, &Rk4 { dt: 1e-2 }, &seeds, 0.0, 1.0)
        .prep(|seed| {
            let mut params = decay_params(&sys, seed);
            plan.corrupt(seed, &mut params, &mut []);
            let y0 = sys.initial_state_for(&params);
            (params, y0)
        })
        .with_recovery(&policy)
        .reduce(
            |snap, _| Ok::<_, SolveError>(snap.state[0].is_finite()),
            &ark::sim::reduce::YieldCounter,
        )
        .unwrap();
    // YieldCounter sees every surviving instance exactly once.
    assert_eq!(outcomes.total, report.total());
    assert_eq!(report.recovered, plan.count_faulty(&seeds) as u64);
    // The default chain's first entry (scalar DP45) rescues a merely
    // stiff instance. `FailureLog` — the reducer the recovering terminal
    // runs implicitly — folds such an outcome stream to the same report.
    let log = FailureLog;
    let mut acc = log.new_acc();
    log.push(
        &mut acc,
        InstanceOutcome::Recovered {
            attempts: 1,
            final_solver: "dp45",
        },
    );
    log.push(&mut acc, InstanceOutcome::Completed);
    let folded = log.finish(acc);
    assert_eq!((folded.recovered, folded.retry_attempts), (1, 1));
    assert_eq!(folded.completed, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized fault plans over randomized seed windows: the injected
    /// faults, every recovery outcome, and every accumulator bit are pure
    /// functions of the seeds — identical for workers 1/2/8 × lanes 1/4/8,
    /// including ensembles with scalar tails and N < L.
    #[test]
    fn injected_fault_ensembles_are_worker_and_lane_invariant(
        n in 1usize..80,
        base in 0u64..512,
        one_in in 3u64..24,
        salt in 0u64..8,
    ) {
        let (_lang, sys) = decay_system();
        let seeds = seed_range(base, n);
        let plans = [
            FaultPlan::one_in(one_in, FaultMode::Stiffen { factor: 1e-3 }).with_salt(salt),
            FaultPlan::one_in(one_in * 2, FaultMode::Blowup).with_salt(salt ^ 5),
        ];
        let policy = RecoveryPolicy::default();
        let reference = faulted_decay_run(&sys, &seeds, &plans, &policy, 1, 1);
        prop_assert_eq!(reference.1.total(), n as u64);
        for workers in [2usize, 8] {
            for lanes in [1usize, 4, 8] {
                let run = faulted_decay_run(&sys, &seeds, &plans, &policy, workers, lanes);
                let cx =
                    format!("n={n} base={base} one_in={one_in} workers={workers} lanes={lanes}");
                assert_moments_bits(&run.0, &reference.0, &cx);
                prop_assert_eq!(&run.1, &reference.1, "{}", cx);
            }
        }
    }
}
