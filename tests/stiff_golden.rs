//! Stiff golden suite: the Van der Pol (μ = 1000) and Robertson kinetics
//! benchmarks compiled from their dynamical-graph encodings
//! ([`ark::paradigms::stiff`]), integrated with the implicit TR-BDF2
//! solver against pinned end states, with the step-count advantage over
//! the explicit adaptive pair and worker-count determinism locked in.

use ark::core::CompiledSystem;
use ark::ode::{DormandPrince, TrBdf2};
use ark::paradigms::stiff::{robertson_language, robertson_network, vdp_language, vdp_oscillator};
use ark::sim::{seed_range, Ensemble};

fn vdp_system(mu: f64) -> CompiledSystem {
    let lang = vdp_language();
    let g = vdp_oscillator(&lang, mu).unwrap();
    CompiledSystem::compile(&lang, &g).unwrap()
}

/// Van der Pol at μ = 1000 over t ∈ [0, 3]: the trajectory rides the slow
/// manifold (x ≈ 2, y ≈ −x/(μ(x²−1))), but the fast eigenvalue
/// λ ≈ μ(1−x²) ≈ −3000 forces any explicit stepper to resolve ~1/3000
/// time scales the whole way. TR-BDF2's step count is set by accuracy
/// alone — the ≥10× advantage pinned here.
#[test]
fn vdp_mu1000_golden_end_state_and_step_advantage() {
    let sys = vdp_system(1000.0);
    let (ix, iy) = (sys.state_index("x").unwrap(), sys.state_index("y").unwrap());
    let y0 = sys.initial_state();
    let bound = sys.bind();

    let tr = TrBdf2::new(1e-6, 1e-9)
        .integrate(&bound, 0.0, &y0, 3.0, usize::MAX)
        .unwrap();
    let implicit_steps = tr.stats().accepted + tr.stats().rejected;
    let end = tr.last().unwrap().1;
    eprintln!(
        "vdp trbdf2: x={:.10} y={:.10e} accepted={} rejected={} newton={} rhs={}",
        end[ix],
        end[iy],
        tr.stats().accepted,
        tr.stats().rejected,
        tr.stats().newton_iters,
        tr.stats().rhs_evals
    );

    let dp = DormandPrince::new(1e-6, 1e-9)
        .integrate(&bound, 0.0, &y0, 3.0)
        .unwrap();
    let dp_end = dp.last().unwrap().1;
    eprintln!(
        "vdp dp45:   x={:.10} y={:.10e} accepted={} rejected={} rhs={}",
        dp_end[ix],
        dp_end[iy],
        dp.stats().accepted,
        dp.stats().rejected,
        dp.stats().rhs_evals
    );

    // Pinned golden end state (independently reproduced by DP45 below):
    // x(3) ≈ 1.9979985531, y(3) ≈ −6.6778e-4 on the slow manifold.
    assert!((end[ix] - 1.9979985531).abs() < 1e-6, "x = {}", end[ix]);
    assert!((end[iy] + 6.6778e-4).abs() < 1e-7, "y = {}", end[iy]);
    // Both solvers at equal tolerance converge to the same point.
    assert!((end[ix] - dp_end[ix]).abs() < 1e-6);
    assert!((end[iy] - dp_end[iy]).abs() < 1e-8);

    // Equal-tolerance step-count advantage (the reason implicit solvers
    // exist): ≥10× fewer total steps, rejections included.
    assert!(
        10 * implicit_steps <= dp.stats().accepted + dp.stats().rejected,
        "TR-BDF2 {} steps vs DP45 {}",
        implicit_steps,
        dp.stats().accepted + dp.stats().rejected
    );
    // The Newton/Jacobian machinery really ran.
    assert!(tr.stats().newton_iters >= 2 * tr.stats().accepted);
}

/// Robertson kinetics to t = 40 (the classic checkpoint): pinned end
/// state, exact mass conservation, and agreement with the literature
/// values A ≈ 0.7158, C ≈ 0.2842.
#[test]
fn robertson_golden_end_state() {
    let lang = robertson_language();
    let g = robertson_network(&lang).unwrap();
    let sys = CompiledSystem::compile(&lang, &g).unwrap();
    let (ia, ib, ic) = (
        sys.state_index("a").unwrap(),
        sys.state_index("b").unwrap(),
        sys.state_index("c").unwrap(),
    );
    let y0 = sys.initial_state();
    let bound = sys.bind();
    let tr = TrBdf2::new(1e-8, 1e-12)
        .integrate(&bound, 0.0, &y0, 40.0, usize::MAX)
        .unwrap();
    let end = tr.last().unwrap().1;
    eprintln!(
        "robertson trbdf2: A={:.10} B={:.10e} C={:.10} accepted={} rejected={} newton={}",
        end[ia],
        end[ib],
        end[ic],
        tr.stats().accepted,
        tr.stats().rejected,
        tr.stats().newton_iters
    );
    // Literature reference (e.g. Hairer & Wanner): y(40) ≈
    // (0.7158271, 9.186e-6, 0.2841637).
    assert!((end[ia] - 0.7158271).abs() < 1e-4, "A = {}", end[ia]);
    assert!((end[ib] - 9.186e-6).abs() < 1e-7, "B = {}", end[ib]);
    assert!((end[ic] - 0.2841637).abs() < 1e-4, "C = {}", end[ic]);
    // Mass conservation is structural (the reaction terms cancel exactly).
    assert!(
        (end[ia] + end[ib] + end[ic] - 1.0).abs() < 1e-7,
        "mass {}",
        end[ia] + end[ib] + end[ic]
    );
}

/// The implicit solver under the ensemble engine: TR-BDF2 is scalar-only
/// (`supports_lanes() == false`), so the engine dispatches it per
/// instance — and the results stay bit-identical for 1, 2, and 8 workers
/// on both the materializing and the streaming paths.
#[test]
fn vdp_ensemble_bit_identical_across_worker_counts() {
    let sys = vdp_system(1000.0);
    let solver = TrBdf2::new(1e-6, 1e-9);
    let seeds = seed_range(0, 12);
    // Vary the initial position per instance.
    let prep = |seed: u64| (Vec::new(), vec![1.8 + 0.05 * seed as f64, 0.0]);

    let reference = Ensemble::new(1)
        .run(&sys, &solver, &seeds, 0.0, 1.0)
        .stride(1)
        .prep(prep)
        .trajectories()
        .unwrap();
    assert_eq!(reference.len(), seeds.len());
    for workers in [2usize, 8] {
        let runs = Ensemble::new(workers)
            .run(&sys, &solver, &seeds, 0.0, 1.0)
            .stride(1)
            .prep(prep)
            .trajectories()
            .unwrap();
        assert_eq!(
            reference, runs,
            "trajectories must be bit-identical at {workers} workers"
        );
    }

    // Streaming path: fold every instance's final position through the
    // online moments accumulator; the merged result is keyed only by seed
    // order, never by worker count.
    use ark::sim::reduce::Moments;
    let stream = |workers: usize| {
        Ensemble::new(workers)
            .run(&sys, &solver, &seeds, 0.0, 1.0)
            .prep(prep)
            .reduce(
                |snap, _scratch| Ok::<_, ark::ode::SolveError>(snap.state[0]),
                &Moments,
            )
            .unwrap()
    };
    let first = stream(1);
    assert_eq!(first.count, seeds.len() as u64);
    for workers in [2usize, 8] {
        let got = stream(workers);
        assert_eq!(first.mean.to_bits(), got.mean.to_bits());
        assert_eq!(first.m2.to_bits(), got.m2.to_bits());
    }

    // Cross-check the ensemble path against direct serial integration.
    for (seed, tr) in seeds.iter().zip(&reference) {
        let (_, y0) = prep(*seed);
        let bound = sys.bind();
        let direct = solver.integrate(&bound, 0.0, &y0, 1.0, 1).unwrap();
        assert_eq!(&direct, tr, "seed {seed} ensemble vs direct");
    }
}
