//! Integration tests pinning the paper's headline experimental claims at
//! reduced scale (the full-scale runs live in the `ark-bench` binaries and
//! are recorded in EXPERIMENTS.md).

use ark::core::validate::validate;
use ark::core::CompiledSystem;
use ark::ode::{ensemble_stats, Rk4};
use ark::paradigms::cnn::{
    build_cnn, cnn_language, grid_extern_registry, hw_cnn_language, run_cnn, NonIdeality,
    EDGE_TEMPLATE,
};
use ark::paradigms::image::Image;
use ark::paradigms::maxcut::{classify_phases, solve, CouplingKind, MaxCutProblem};
use ark::paradigms::obc::{obc_language, ofs_obc_language};
use ark::paradigms::tln::{
    branched_out_v, branched_tline, gmc_tln_language, linear_out_v, linear_tline, tln_language,
    MismatchKind, TlineConfig,
};
use std::f64::consts::PI;

/// Figure 4a/4b: branched line shows an attenuated pulse plus an echo; the
/// linear line shows a single clean pulse.
#[test]
fn fig4_linear_vs_branched_shapes() {
    let lang = tln_language();
    let cfg = TlineConfig::default();

    let linear = linear_tline(&lang, 12, &cfg, 0).unwrap();
    let sys = CompiledSystem::compile(&lang, &linear).unwrap();
    let tr = Rk4 { dt: 2e-11 }
        .integrate(&sys.bind(), 0.0, &sys.initial_state(), 6e-8, 8)
        .unwrap();
    let out = sys.state_index(&linear_out_v(12)).unwrap();
    let (t_main, v_main) = tr.peak_in_window(out, 0.0, 6e-8);
    assert!(v_main > 0.4 && v_main < 0.65, "linear peak {v_main}");
    // Quiet after the pulse (no echo).
    let (_, v_late) = tr.peak_in_window(out, t_main + 2.5e-8, 6e-8);
    assert!(v_late < 0.15 * v_main, "linear echo energy {v_late}");

    // Paper-scale branch dimensions so the echo separates cleanly from the
    // main pulse (trunk delay 16 ns, echo +20 ns).
    let branched = branched_tline(&lang, 8, 10, 8, &cfg, 0).unwrap();
    let sys = CompiledSystem::compile(&lang, &branched).unwrap();
    let tr = Rk4 { dt: 2e-11 }
        .integrate(&sys.bind(), 0.0, &sys.initial_state(), 1.2e-7, 8)
        .unwrap();
    let out = sys.state_index(&branched_out_v(8)).unwrap();
    let (tb, vb) = tr.peak_in_window(out, 0.0, 4.5e-8);
    assert!(
        vb < v_main,
        "branched peak {vb} must be attenuated vs {v_main}"
    );
    let (_, ve) = tr.peak_in_window(out, tb + 2.2e-8, 1.2e-7);
    assert!(ve > 0.25 * vb, "branched echo {ve} vs main {vb}");
}

/// Figure 4c/4d: Gm mismatch spreads the ensemble far more than Cint.
#[test]
fn fig4_gm_variation_dominates_cint() {
    let base = tln_language();
    let gmc = gmc_tln_language(&base);
    let run = |kind: MismatchKind| {
        let cfg = TlineConfig {
            mismatch: kind,
            ..TlineConfig::default()
        };
        (0..10u64)
            .map(|seed| {
                let g = linear_tline(&gmc, 10, &cfg, seed).unwrap();
                let sys = CompiledSystem::compile(&gmc, &g).unwrap();
                Rk4 { dt: 5e-11 }
                    .integrate(&sys.bind(), 0.0, &sys.initial_state(), 4e-8, 8)
                    .unwrap()
            })
            .collect::<Vec<_>>()
    };
    let idx = {
        let g = linear_tline(&gmc, 10, &TlineConfig::default(), 0).unwrap();
        CompiledSystem::compile(&gmc, &g)
            .unwrap()
            .state_index(&linear_out_v(10))
            .unwrap()
    };
    let cint = ensemble_stats(&run(MismatchKind::Cint), idx, 0.5e-8, 4e-8, 40);
    let gm = ensemble_stats(&run(MismatchKind::Gm), idx, 0.5e-8, 4e-8, 40);
    assert!(
        gm.mean_std() > 2.0 * cint.mean_std(),
        "gm {} vs cint {}",
        gm.mean_std(),
        cint.mean_std()
    );
}

/// Figure 11: the four nonideality columns behave as the paper reports.
#[test]
fn fig11_nonideality_shapes() {
    let base = cnn_language();
    let hw = hw_cnn_language(&base);
    let input = Image::test_blob(10, 10);
    let expected = input.digital_edge_map();

    let run = |kind: NonIdeality, seed: u64| {
        let inst = build_cnn(&hw, &input, &EDGE_TEMPLATE, kind, seed).unwrap();
        let report = validate(&hw, &inst.graph, &grid_extern_registry()).unwrap();
        assert!(report.is_valid(), "{report}");
        run_cnn(&hw, &inst, 5.0, &[]).unwrap()
    };

    let ideal = run(NonIdeality::Ideal, 3);
    assert_eq!(
        ideal.final_output.diff_count(&expected),
        0,
        "A must be correct"
    );
    let t_ideal = ideal.convergence_time.unwrap();

    let zmm = run(NonIdeality::ZMismatch, 3);
    assert_eq!(zmm.final_output.diff_count(&expected), 0, "B stays correct");
    assert!(
        zmm.convergence_time.unwrap() >= t_ideal,
        "B must converge no faster than A"
    );

    // C corrupts the output for at least one fabricated instance.
    let wrong: usize = (0..3)
        .map(|s| {
            run(NonIdeality::GMismatch, s)
                .final_output
                .diff_count(&expected)
        })
        .sum();
    assert!(wrong > 0, "C must corrupt some output");

    let satni = run(NonIdeality::NonIdealSat, 3);
    assert_eq!(
        satni.final_output.diff_count(&expected),
        0,
        "D stays correct"
    );
    assert!(
        satni.convergence_time.unwrap() <= t_ideal,
        "D must converge at least as fast as A ({:?} vs {t_ideal})",
        satni.convergence_time
    );
}

/// Table 1 shape: the offset variant collapses at d = 0.01π and recovers at
/// d = 0.1π, while the ideal solver is high throughout.
#[test]
fn table1_shape() {
    let base = obc_language();
    let ofs = ofs_obc_language(&base);
    let trials = 40u64;
    let mut sync = [[0u32; 2]; 2]; // [variant][d]
    for t in 0..trials {
        let problem = MaxCutProblem::random(4, 1000 + t);
        for (vi, kind) in [CouplingKind::Ideal, CouplingKind::Offset]
            .into_iter()
            .enumerate()
        {
            let outcome = solve(&ofs, &problem, kind, 0.1 * PI, 1000 + t).unwrap();
            for (di, d) in [0.01 * PI, 0.1 * PI].into_iter().enumerate() {
                if classify_phases(&outcome.phases, d).is_some() {
                    sync[vi][di] += 1;
                }
            }
        }
    }
    let pct = |x: u32| f64::from(x) * 100.0 / trials as f64;
    assert!(
        pct(sync[0][0]) > 80.0,
        "ideal tight sync {}",
        pct(sync[0][0])
    );
    assert!(
        pct(sync[1][0]) < pct(sync[0][0]) - 15.0,
        "offset must collapse: {} vs {}",
        pct(sync[1][0]),
        pct(sync[0][0])
    );
    assert!(
        pct(sync[1][1]) > 85.0,
        "offset must recover at loose d: {}",
        pct(sync[1][1])
    );
}
