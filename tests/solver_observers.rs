//! Bit-identity suite for the solver/observer redesign: the observer-driven
//! drive loops must reproduce the **pre-redesign** integrator arithmetic
//! exactly. The reference implementations below are verbatim copies of the
//! historical hand-rolled loops (Euler, RK4, Dormand–Prince with PI
//! control); the proptests pin the `DenseRecorder`/`Strided` output — and
//! therefore the `integrate`/`integrate_with` wrappers — to them bit for
//! bit on randomized systems.

use ark::ode::{
    DormandPrince, Euler, FinalState, FnSystem, OdeWorkspace, Probe, Rk4, SolveStats, Solver,
    Strided, Trajectory,
};
use proptest::prelude::*;

/// A borrowed right-hand-side function, as the reference loops consume it.
type Rhs<'a> = &'a dyn Fn(f64, &[f64], &mut [f64]);

/// The pre-redesign fixed-step RK4 loop, verbatim.
fn reference_rk4(
    dt: f64,
    rhs: Rhs<'_>,
    n: usize,
    t0: f64,
    y0: &[f64],
    t1: f64,
    stride: usize,
) -> Trajectory {
    let stride = stride.max(1);
    let mut y = y0.to_vec();
    let (mut tmp, mut k1, mut k2, mut k3, mut k4) = (
        vec![0.0; n],
        vec![0.0; n],
        vec![0.0; n],
        vec![0.0; n],
        vec![0.0; n],
    );
    let steps = ((t1 - t0) / dt).ceil() as usize;
    let mut tr = Trajectory::new();
    tr.push_slice(t0, &y);
    let dt = (t1 - t0) / steps as f64;
    let mut t = t0;
    for step in 0..steps {
        rhs(t, &y, &mut k1);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * dt * k1[i];
        }
        rhs(t + 0.5 * dt, &tmp, &mut k2);
        for i in 0..n {
            tmp[i] = y[i] + 0.5 * dt * k2[i];
        }
        rhs(t + 0.5 * dt, &tmp, &mut k3);
        for i in 0..n {
            tmp[i] = y[i] + dt * k3[i];
        }
        rhs(t + dt, &tmp, &mut k4);
        for i in 0..n {
            y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t = t0 + (step + 1) as f64 * dt;
        if (step + 1) % stride == 0 || step + 1 == steps {
            tr.push_slice(t, &y);
        }
    }
    tr.set_stats(SolveStats {
        accepted: steps,
        rejected: 0,
        rhs_evals: 4 * steps,
        newton_iters: 0,
    });
    tr
}

/// The pre-redesign fixed-step Euler loop, verbatim.
fn reference_euler(
    dt: f64,
    rhs: Rhs<'_>,
    n: usize,
    t0: f64,
    y0: &[f64],
    t1: f64,
    stride: usize,
) -> Trajectory {
    let stride = stride.max(1);
    let mut y = y0.to_vec();
    let mut dydt = vec![0.0; n];
    let steps = ((t1 - t0) / dt).ceil() as usize;
    let mut tr = Trajectory::new();
    tr.push_slice(t0, &y);
    let dt = (t1 - t0) / steps as f64;
    let mut t = t0;
    for k in 0..steps {
        rhs(t, &y, &mut dydt);
        for (yi, di) in y.iter_mut().zip(dydt.iter()) {
            *yi += dt * di;
        }
        t = t0 + (k + 1) as f64 * dt;
        if (k + 1) % stride == 0 || k + 1 == steps {
            tr.push_slice(t, &y);
        }
    }
    tr.set_stats(SolveStats {
        accepted: steps,
        rejected: 0,
        rhs_evals: steps,
        newton_iters: 0,
    });
    tr
}

/// The pre-redesign adaptive Dormand–Prince loop (PI control, FSAL),
/// verbatim.
#[allow(clippy::needless_range_loop)]
fn reference_dp45(
    cfg: &DormandPrince,
    rhs: Rhs<'_>,
    n: usize,
    t0: f64,
    y0: &[f64],
    t1: f64,
) -> Trajectory {
    const C: [f64; 7] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
    const A: [[f64; 6]; 7] = [
        [0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        [1.0 / 5.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        [3.0 / 40.0, 9.0 / 40.0, 0.0, 0.0, 0.0, 0.0],
        [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0, 0.0, 0.0, 0.0],
        [
            19372.0 / 6561.0,
            -25360.0 / 2187.0,
            64448.0 / 6561.0,
            -212.0 / 729.0,
            0.0,
            0.0,
        ],
        [
            9017.0 / 3168.0,
            -355.0 / 33.0,
            46732.0 / 5247.0,
            49.0 / 176.0,
            -5103.0 / 18656.0,
            0.0,
        ],
        [
            35.0 / 384.0,
            0.0,
            500.0 / 1113.0,
            125.0 / 192.0,
            -2187.0 / 6784.0,
            11.0 / 84.0,
        ],
    ];
    const B5: [f64; 7] = [
        35.0 / 384.0,
        0.0,
        500.0 / 1113.0,
        125.0 / 192.0,
        -2187.0 / 6784.0,
        11.0 / 84.0,
        0.0,
    ];
    const B4: [f64; 7] = [
        5179.0 / 57600.0,
        0.0,
        7571.0 / 16695.0,
        393.0 / 640.0,
        -92097.0 / 339200.0,
        187.0 / 2100.0,
        1.0 / 40.0,
    ];
    let mut y = y0.to_vec();
    let mut ytmp = vec![0.0; n];
    let mut k = vec![vec![0.0; n]; 7];
    let mut t = t0;
    let mut h = cfg.h0.unwrap_or((t1 - t0) / 100.0).min(cfg.h_max);
    let mut tr = Trajectory::new();
    tr.push_slice(t0, &y);
    let mut stats = SolveStats::default();
    rhs(t, &y, &mut k[0]);
    stats.rhs_evals += 1;
    let mut err_prev: f64 = 1.0;
    while t < t1 {
        assert!(h >= cfg.h_min, "reference underflow");
        if t + h > t1 {
            h = t1 - t;
        }
        for s in 1..7 {
            for i in 0..n {
                let mut acc = 0.0;
                for (j, kj) in k.iter().enumerate().take(s) {
                    let a = A[s][j];
                    if a != 0.0 {
                        acc += a * kj[i];
                    }
                }
                ytmp[i] = y[i] + h * acc;
            }
            let (head, tail) = k.split_at_mut(s);
            let _ = head;
            rhs(t + C[s] * h, &ytmp, &mut tail[0]);
            stats.rhs_evals += 1;
        }
        let mut err: f64 = 0.0;
        for i in 0..n {
            let mut y5 = y[i];
            let mut e = 0.0;
            for s in 0..7 {
                y5 += h * B5[s] * k[s][i];
                e += h * (B5[s] - B4[s]) * k[s][i];
            }
            ytmp[i] = y5;
            let scale = cfg.atol + cfg.rtol * y[i].abs().max(y5.abs());
            let r = e / scale;
            err += r * r;
        }
        err = (err / n as f64).sqrt();
        if err <= 1.0 || h <= cfg.h_min * 2.0 {
            t += h;
            y.copy_from_slice(&ytmp);
            assert!(y.iter().all(|x| x.is_finite()), "reference blow-up");
            tr.push_slice(t, &y);
            stats.accepted += 1;
            k.swap(0, 6);
            let e = err.max(1e-10);
            let fac = 0.9 * e.powf(-0.7 / 5.0) * err_prev.powf(0.4 / 5.0);
            h = (h * fac.clamp(0.2, 5.0)).min(cfg.h_max);
            err_prev = e;
        } else {
            stats.rejected += 1;
            h *= (0.9 * err.powf(-0.2)).clamp(0.1, 1.0);
        }
    }
    tr.set_stats(stats);
    tr
}

/// A randomized 3-state nonlinear system shared by the proptests.
fn test_rhs(a: [f64; 9], f: f64) -> impl Fn(f64, &[f64], &mut [f64]) {
    move |t: f64, y: &[f64], d: &mut [f64]| {
        d[0] = a[0] * y[0] + a[1] * y[1] + a[2] * (y[2] * t).sin() + f;
        d[1] = a[3] * y[1] + a[4] * y[2] + a[5] * y[0] * y[0] * 0.1;
        d[2] = a[6] * y[2] + a[7] * y[0] + a[8] * (2.0 * t).cos();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `DenseRecorder`/`Strided` under the redesigned drive loops are
    /// bit-identical to the pre-redesign Euler and RK4 loops on randomized
    /// systems, strides, and intervals.
    #[test]
    fn fixed_step_recorders_match_pre_redesign_loops(
        a in proptest::collection::vec(-1.5..1.5f64, 9),
        y0 in proptest::collection::vec(-1.0..1.0f64, 3),
        f in -1.0..1.0f64,
        t1 in 0.2..1.5f64,
        stride in 1usize..7,
        dt in 0.005..0.06f64,
    ) {
        let a: [f64; 9] = a.try_into().unwrap();
        let rhs = test_rhs(a, f);
        let sys = FnSystem::new(3, test_rhs(a, f));
        let rk_ref = reference_rk4(dt, &rhs, 3, 0.0, &y0, t1, stride);
        let rk_new = Rk4 { dt }.integrate(&sys, 0.0, &y0, t1, stride).unwrap();
        prop_assert_eq!(&rk_ref, &rk_new);
        let eu_ref = reference_euler(dt, &rhs, 3, 0.0, &y0, t1, stride);
        let eu_new = Euler { dt }.integrate(&sys, 0.0, &y0, t1, stride).unwrap();
        prop_assert_eq!(&eu_ref, &eu_new);
    }

    /// The adaptive drive loop (PI control, FSAL, rejection accounting) is
    /// bit-identical to the pre-redesign Dormand–Prince loop.
    #[test]
    fn adaptive_recorder_matches_pre_redesign_loop(
        a in proptest::collection::vec(-1.5..1.5f64, 9),
        y0 in proptest::collection::vec(-1.0..1.0f64, 3),
        f in -1.0..1.0f64,
        t1 in 0.2..1.5f64,
        h0 in proptest::option::of(0.01..0.5f64),
    ) {
        let a: [f64; 9] = a.try_into().unwrap();
        let rhs = test_rhs(a, f);
        let sys = FnSystem::new(3, test_rhs(a, f));
        let cfg = DormandPrince { h0, ..DormandPrince::new(1e-7, 1e-10) };
        let reference = reference_dp45(&cfg, &rhs, 3, 0.0, &y0, t1);
        let new = cfg.integrate(&sys, 0.0, &y0, t1).unwrap();
        prop_assert_eq!(&reference, &new);
    }

    /// `FinalState` captures exactly the last sample of the recorded
    /// trajectory (no trajectory allocation needed to get the endpoint).
    #[test]
    fn final_state_matches_trajectory_endpoint(
        a in proptest::collection::vec(-1.5..1.5f64, 9),
        y0 in proptest::collection::vec(-1.0..1.0f64, 3),
        dt in 0.005..0.05f64,
    ) {
        let a: [f64; 9] = a.try_into().unwrap();
        let sys = FnSystem::new(3, test_rhs(a, 0.3));
        let tr = Rk4 { dt }.integrate(&sys, 0.0, &y0, 1.0, 1).unwrap();
        let mut end = FinalState::new();
        let stats = Rk4 { dt }
            .solve(&sys, 0.0, &y0, 1.0, &mut end, &mut OdeWorkspace::new(3))
            .unwrap();
        let (t_last, y_last) = tr.last().unwrap();
        prop_assert_eq!(end.time().to_bits(), t_last.to_bits());
        for (got, want) in end.state().iter().zip(y_last) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
        prop_assert_eq!(end.stats(), stats);
        prop_assert_eq!(stats, tr.stats());
    }
}

/// A probe sees every accepted step, and composing observers in a tuple
/// feeds both.
#[test]
fn probe_and_tuple_observers_see_every_step() {
    let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0]);
    let mut seen = Vec::new();
    let probe = Probe::new(|t: f64, y: &[f64], _info, _alive: &[bool]| {
        seen.push((t, y[0]));
        true
    });
    let mut obs = (Strided::every(1), probe);
    let stats = Rk4 { dt: 0.1 }
        .solve(&sys, 0.0, &[1.0], 1.0, &mut obs, &mut OdeWorkspace::new(1))
        .unwrap();
    assert_eq!(stats.accepted, 10);
    let tr = obs.0.into_trajectory();
    assert_eq!(seen.len(), 10);
    // The probe saw exactly the recorded samples (minus the initial one).
    for (k, (t, v)) in seen.iter().enumerate() {
        let (tt, ss) = (tr.times()[k + 1], tr.state(k + 1)[0]);
        assert_eq!(t.to_bits(), tt.to_bits());
        assert_eq!(v.to_bits(), ss.to_bits());
    }
}

/// An observer returning `false` stops the run early; stats cover only the
/// steps actually taken.
#[test]
fn observer_early_exit_stops_the_run() {
    let sys = FnSystem::new(1, |_t, y: &[f64], d: &mut [f64]| d[0] = -y[0]);
    let mut probe = Probe::new(|_t, y: &[f64], _info, _alive: &[bool]| y[0] > 0.5);
    let stats = Rk4 { dt: 1e-2 }
        .solve(
            &sys,
            0.0,
            &[1.0],
            5.0,
            &mut probe,
            &mut OdeWorkspace::new(1),
        )
        .unwrap();
    // ln 2 ≈ 0.693 → ~70 steps, far short of the 500-step full run.
    assert!(stats.accepted < 100, "stats {stats:?}");
    assert_eq!(stats.rhs_evals, 4 * stats.accepted);
}
