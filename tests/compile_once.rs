//! Compile-counter assertions: every ensemble entry point performs exactly
//! one compilation per *design* (per challenge configuration for the PUF),
//! never one per fabricated instance — the contract behind the
//! compile-once/parameterize-many engine.
//!
//! All assertions live in ONE test function: the counter is process-global
//! and `cargo test` runs tests within a binary concurrently.

use ark::core::CompiledSystem;
use ark::paradigms::cnn::{
    cnn_language, hw_cnn_language, run_cnn_ensemble, NonIdeality, EDGE_TEMPLATE,
};
use ark::paradigms::image::Image;
use ark::paradigms::maxcut::{table1_cell_with, CouplingKind};
use ark::paradigms::obc::{obc_language, ofs_obc_language};
use ark::paradigms::tln::{
    gmc_tln_language, tline_mismatch_ensemble, tln_language, MismatchKind, TlineConfig,
};
use ark::puf::{evaluate_with, EvalConfig, PufDesign};
use ark::sim::{seed_range, Ensemble};
use std::f64::consts::PI;

#[test]
fn ensemble_entry_points_compile_once_per_design() {
    let ens = Ensemble::new(2);
    let seeds = seed_range(0, 6);

    // §7.1 CNN Monte Carlo: 6 fabricated instances, 1 compile.
    let base = cnn_language();
    let hw = hw_cnn_language(&base);
    let input = Image::from_ascii(&["....", ".##.", ".##.", "...."]);
    let before = CompiledSystem::compile_count();
    run_cnn_ensemble(
        &hw,
        &input,
        &EDGE_TEMPLATE,
        NonIdeality::GMismatch,
        1.0,
        &[],
        &seeds,
        &ens,
    )
    .unwrap();
    assert_eq!(
        CompiledSystem::compile_count() - before,
        1,
        "run_cnn_ensemble must compile exactly once per design"
    );

    // §2.4 GmC-TLN Monte Carlo: 6 instances, 1 compile.
    let tbase = tln_language();
    let gmc = gmc_tln_language(&tbase);
    let cfg = TlineConfig {
        mismatch: MismatchKind::Gm,
        ..TlineConfig::default()
    };
    let before = CompiledSystem::compile_count();
    tline_mismatch_ensemble(&gmc, 6, &cfg, 1e-8, 1e-10, 8, &seeds, &ens).unwrap();
    assert_eq!(
        CompiledSystem::compile_count() - before,
        1,
        "tline_mismatch_ensemble must compile exactly once per design"
    );

    // Table 1 max-cut Monte Carlo: 32 trials (32 random problem graphs, 32
    // fabricated solvers), one compile per *distinct topology class* (the
    // sparse-template memoization) — never one per trial.
    let obase = obc_language();
    let ofs = ofs_obc_language(&obase);
    let trials = 32u64;
    let classes: std::collections::BTreeSet<Vec<(usize, usize)>> = (0..trials)
        .map(|s| ark::paradigms::maxcut::MaxCutProblem::random(4, 100 + s).edges)
        .collect();
    assert!(
        (classes.len() as u64) < trials,
        "trials should share at least one topology ({} classes)",
        classes.len()
    );
    let before = CompiledSystem::compile_count();
    table1_cell_with(
        &ofs,
        CouplingKind::Offset,
        0.1 * PI,
        4,
        trials as usize,
        100,
        &ens,
    )
    .unwrap();
    assert_eq!(
        CompiledSystem::compile_count() - before,
        classes.len() as u64,
        "table1_cell_with must compile exactly once per topology class"
    );

    // TLN PUF evaluation: instances × challenges × (1 + remeasures)
    // simulations, but only 2 compiles per challenge (fabricated design
    // parametrically + nominal reference).
    let design = PufDesign {
        spacing: 1,
        sites: 2,
        stub_len: 2,
        window_start: 0.5e-8,
        window_end: 2e-8,
        response_bits: 8,
        ..PufDesign::default()
    };
    let pcfg = EvalConfig {
        instances: 3,
        challenges: 2,
        remeasures: 1,
        noise_sigma: 1e-4,
    };
    let before = CompiledSystem::compile_count();
    evaluate_with(&gmc, &design, &pcfg, &ens).unwrap();
    assert_eq!(
        CompiledSystem::compile_count() - before,
        2 * pcfg.challenges as u64,
        "puf::evaluate_with must compile exactly twice per challenge"
    );
}
