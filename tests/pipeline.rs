//! Cross-crate integration tests: the full Ark pipeline from source text or
//! builder API through validation, compilation, simulation, and the
//! circuit-level substrate.

use ark::core::program::Program;
use ark::core::validate::{validate, ExternRegistry};
use ark::core::{CompiledSystem, Value};
use ark::ode::{relative_rmse, Rk4};
use ark::paradigms::tln::{
    gmc_tln_language, linear_out_v, linear_tline, tln_language, MismatchKind, TlineConfig,
    BR_FUNC_SRC,
};
use ark::spice::synthesize;

/// Text → program → graph → validator → compiler → ODE → trajectory.
#[test]
fn textual_program_end_to_end() {
    let prog = Program::parse(BR_FUNC_SRC).unwrap();
    let lang = prog.language("tln_demo").unwrap();
    for br in [0i64, 1] {
        let graph = prog.invoke("br_func", &[Value::Int(br)], 0).unwrap();
        let sys = CompiledSystem::compile(lang, &graph).unwrap();
        let tr = Rk4 { dt: 2e-11 }
            .integrate(&sys.bind(), 0.0, &sys.initial_state(), 2e-8, 16)
            .unwrap();
        // Signal reaches OUT_V in both configurations.
        let out = sys.state_index("OUT_V").unwrap();
        let (_, peak) = tr.peak_in_window(out, 0.0, 2e-8);
        assert!(peak > 0.05, "br={br}: peak {peak}");
    }
}

/// The same physical design must match between the dynamical-graph
/// simulation (ark-core + ark-ode) and the circuit-level netlist
/// (ark-spice), across crates and integrators.
#[test]
fn dg_and_netlist_agree_across_crates() {
    let base = tln_language();
    let gmc = gmc_tln_language(&base);
    let cfg = TlineConfig {
        mismatch: MismatchKind::Both,
        ..TlineConfig::default()
    };
    let graph = linear_tline(&gmc, 6, &cfg, 99).unwrap();
    assert!(validate(&gmc, &graph, &ExternRegistry::new())
        .unwrap()
        .is_valid());

    let sys = CompiledSystem::compile(&gmc, &graph).unwrap();
    let dg = Rk4 { dt: 2e-11 }
        .integrate(&sys.bind(), 0.0, &sys.initial_state(), 2e-8, 4)
        .unwrap();
    let nl = synthesize(&gmc, &graph).unwrap();
    let nt = nl.transient(2e-8, 2e-11, 4).unwrap();

    let out = linear_out_v(6);
    let e = relative_rmse(
        &dg,
        sys.state_index(&out).unwrap(),
        &nt,
        nl.node_index(&out).unwrap(),
        0.0,
        2e-8,
        100,
    );
    assert!(e < 0.01, "rmse {e}");
}

/// §4.1.1: a graph written with base types simulates identically under the
/// derived hardware language (checked across the full pipeline).
#[test]
fn inheritance_preserves_dynamics_end_to_end() {
    let base = tln_language();
    let gmc = gmc_tln_language(&base);
    let cfg = TlineConfig::default();
    let g_base = linear_tline(&base, 6, &cfg, 0).unwrap();
    let g_gmc = linear_tline(&gmc, 6, &cfg, 0).unwrap();

    let s_base = CompiledSystem::compile(&base, &g_base).unwrap();
    let s_gmc = CompiledSystem::compile(&gmc, &g_gmc).unwrap();
    let t_base = Rk4 { dt: 5e-11 }
        .integrate(&s_base.bind(), 0.0, &s_base.initial_state(), 1e-8, 8)
        .unwrap();
    let t_gmc = Rk4 { dt: 5e-11 }
        .integrate(&s_gmc.bind(), 0.0, &s_gmc.initial_state(), 1e-8, 8)
        .unwrap();
    // Bit-identical: the derived language falls back to exactly the parent
    // rules for base-type graphs.
    assert_eq!(t_base.last().unwrap().1, t_gmc.last().unwrap().1);
}

/// Derived-type substitution (paper Fig. 5): swapping base types for
/// mismatch types keeps the graph valid but changes the dynamics.
#[test]
fn substitution_changes_dynamics_but_stays_valid() {
    let base = tln_language();
    let gmc = gmc_tln_language(&base);
    let ideal = linear_tline(&gmc, 6, &TlineConfig::default(), 5).unwrap();
    let cfg = TlineConfig {
        mismatch: MismatchKind::Gm,
        ..TlineConfig::default()
    };
    let noisy = linear_tline(&gmc, 6, &cfg, 5).unwrap();

    assert!(validate(&gmc, &noisy, &ExternRegistry::new())
        .unwrap()
        .is_valid());

    let si = CompiledSystem::compile(&gmc, &ideal).unwrap();
    let sn = CompiledSystem::compile(&gmc, &noisy).unwrap();
    let ti = Rk4 { dt: 5e-11 }
        .integrate(&si.bind(), 0.0, &si.initial_state(), 2e-8, 8)
        .unwrap();
    let tn = Rk4 { dt: 5e-11 }
        .integrate(&sn.bind(), 0.0, &sn.initial_state(), 2e-8, 8)
        .unwrap();
    let out = si.state_index(&linear_out_v(6)).unwrap();
    let diff: f64 = (1..20)
        .map(|k| {
            let t = k as f64 * 1e-9;
            (ti.value_at(t, out) - tn.value_at(t, out)).abs()
        })
        .sum();
    assert!(
        diff > 1e-3,
        "mismatch must perturb the trajectory, diff {diff}"
    );
}

/// The compiler's pretty-printed equations are themselves parseable Ark
/// expressions (round-trip between crates).
#[test]
fn generated_equations_reparse() {
    let lang = tln_language();
    let graph = linear_tline(&lang, 3, &TlineConfig::default(), 0).unwrap();
    let sys = CompiledSystem::compile(&lang, &graph).unwrap();
    assert!(!sys.equations().is_empty());
    for eq in sys.equations() {
        let rhs = eq.split_once('=').expect("lhs = rhs").1.trim();
        ark::expr::parse_expr(rhs).unwrap_or_else(|e| panic!("cannot reparse `{rhs}`: {e}"));
    }
}

/// The pretty-printer round-trips the real case-study languages: printing
/// the TLN + GmC-TLN chain and re-parsing reconstructs identical languages.
#[test]
fn case_study_languages_roundtrip_through_source() {
    use ark::core::language_to_source;
    use ark::core::program::Program;

    let base = tln_language();
    let gmc = gmc_tln_language(&base);
    let src = format!(
        "{}\n{}",
        language_to_source(&base),
        language_to_source(&gmc)
    );
    let prog = Program::parse(&src).unwrap_or_else(|e| panic!("reparse failed: {e}\n{src}"));
    assert_eq!(prog.language("tln").unwrap(), &base);
    assert_eq!(prog.language("gmc_tln").unwrap(), &gmc);

    // Same for OBC and its offset extension.
    use ark::paradigms::obc::{obc_language, ofs_obc_language};
    let obc = obc_language();
    let ofs = ofs_obc_language(&obc);
    let src = format!("{}\n{}", language_to_source(&obc), language_to_source(&ofs));
    let prog = Program::parse(&src).unwrap();
    assert_eq!(prog.language("obc").unwrap(), &obc);
    assert_eq!(prog.language("ofs_obc").unwrap(), &ofs);
}
