//! Golden equivalence suite for the compile-once parametric ensembles: one
//! `compile_parametric` plus per-seed parameter vectors must reproduce the
//! historical rebuild-and-recompile-per-instance results **bit for bit**,
//! independent of worker count.

use ark::core::CompiledSystem;
use ark::ode::Rk4;
use ark::paradigms::cnn::{
    build_cnn, cnn_language, hw_cnn_language, run_cnn, run_cnn_ensemble, CnnRun, NonIdeality,
    EDGE_TEMPLATE,
};
use ark::paradigms::image::Image;
use ark::paradigms::tln::{
    gmc_tln_language, linear_tline, tline_mismatch_ensemble, tln_language, MismatchKind,
    TlineConfig,
};
use ark::sim::{seed_range, Ensemble};

fn cnn_input() -> Image {
    Image::from_ascii(&["....", ".##.", ".#..", "...."])
}

/// Bit-exact comparison of two CNN runs (images, snapshots, convergence).
fn assert_runs_bit_identical(seed: u64, a: &CnnRun, b: &CnnRun) {
    for (r, c, v) in a.final_output.iter() {
        assert_eq!(
            v.to_bits(),
            b.final_output.get(r, c).to_bits(),
            "seed {seed}: final output cell ({r},{c})"
        );
    }
    assert_eq!(a.snapshots.len(), b.snapshots.len());
    for ((ta, ia), (tb, ib)) in a.snapshots.iter().zip(&b.snapshots) {
        assert_eq!(ta, tb);
        for (r, c, v) in ia.iter() {
            assert_eq!(
                v.to_bits(),
                ib.get(r, c).to_bits(),
                "seed {seed}: snapshot t={ta} cell ({r},{c})"
            );
        }
    }
    assert_eq!(a.convergence_time, b.convergence_time, "seed {seed}");
}

/// The parametric CNN ensemble is bit-identical to the per-seed
/// rebuild+recompile path for every hardware nonideality column and for
/// worker counts 1, 2, and 8.
#[test]
fn parametric_cnn_ensemble_matches_recompile_path_exactly() {
    let base = cnn_language();
    let hw = hw_cnn_language(&base);
    let input = cnn_input();
    let seeds = seed_range(0, 6);
    let snap_times = [0.5];
    for nonideality in [
        NonIdeality::Ideal,
        NonIdeality::ZMismatch,
        NonIdeality::GMismatch,
        NonIdeality::NonIdealSat,
    ] {
        // Historical path: one build + one compile per fabricated instance.
        let reference: Vec<CnnRun> = seeds
            .iter()
            .map(|&seed| {
                let inst = build_cnn(&hw, &input, &EDGE_TEMPLATE, nonideality, seed).unwrap();
                run_cnn(&hw, &inst, 1.0, &snap_times).unwrap()
            })
            .collect();
        // Compile-once parametric path, across worker counts.
        for workers in [1usize, 2, 8] {
            let runs = run_cnn_ensemble(
                &hw,
                &input,
                &EDGE_TEMPLATE,
                nonideality,
                1.0,
                &snap_times,
                &seeds,
                &Ensemble::new(workers),
            )
            .unwrap();
            assert_eq!(runs.len(), reference.len());
            for ((serial, parallel), &seed) in reference.iter().zip(&runs).zip(&seeds) {
                assert_runs_bit_identical(seed, serial, parallel);
            }
        }
    }
}

/// The parametric GmC-TLN Monte Carlo reproduces the rebuild-per-seed
/// trajectories exactly (both mismatch entry points of §2.4).
#[test]
fn parametric_tline_ensemble_matches_recompile_path_exactly() {
    let base = tln_language();
    let gmc = gmc_tln_language(&base);
    let seeds = seed_range(0, 5);
    let (segments, t_end, dt, stride) = (6, 1.5e-8, 5e-11, 8);
    for kind in [MismatchKind::Cint, MismatchKind::Gm, MismatchKind::Both] {
        let cfg = TlineConfig {
            mismatch: kind,
            ..TlineConfig::default()
        };
        let parametric = tline_mismatch_ensemble(
            &gmc,
            segments,
            &cfg,
            t_end,
            dt,
            stride,
            &seeds,
            &Ensemble::new(2),
        )
        .unwrap();
        for (&seed, tr) in seeds.iter().zip(&parametric) {
            let graph = linear_tline(&gmc, segments, &cfg, seed).unwrap();
            let sys = CompiledSystem::compile(&gmc, &graph).unwrap();
            let reference = Rk4 { dt }
                .integrate(&sys.bind(), 0.0, &sys.initial_state(), t_end, stride)
                .unwrap();
            assert_eq!(&reference, tr, "seed {seed} ({kind:?})");
        }
    }
}
