//! Determinism suite for the lane-voting adaptive solver
//! (`VotingDormandPrince` / `VotingAdaptive`): ensemble results depend
//! **only on the seeds and the lane width** — never on the worker count.
//! The lane-width dependence is the documented trade of step-size voting
//! (the voted grid is a property of the lane group); the worker-count
//! independence is the engine's hard guarantee, and CI's lane-matrix job
//! re-runs this suite at `ARK_LANES=1/4/8`.

use ark::core::CompiledSystem;
use ark::ode::DormandPrince;
use ark::sim::{seed_range, Ensemble};

/// A small parametric design with genuinely different per-seed stiffness so
/// the voted step grid is exercised (not just a shared smooth decay).
fn stiffness_spread() -> (ark::core::lang::Language, CompiledSystem) {
    use ark::core::func::GraphBuilder;
    use ark::core::lang::{EdgeType, LanguageBuilder, NodeType, ProdRule, Reduction};
    use ark::core::types::SigType;
    use ark::expr::parse_expr;
    let lang = LanguageBuilder::new("rc")
        .node_type(
            NodeType::new("V", 1, Reduction::Sum)
                .attr("tau", SigType::real(0.0, 1000.0))
                .init_default(SigType::real(-1000.0, 1000.0), 1.0),
        )
        .edge_type(EdgeType::new("E"))
        .prod(ProdRule::new(
            ("e", "E"),
            ("s", "V"),
            ("s", "V"),
            "s",
            parse_expr("-var(s)/s.tau").unwrap(),
        ))
        .finish()
        .unwrap();
    let mut b = GraphBuilder::new_parametric(&lang);
    b.node("v", "V").unwrap();
    b.set_attr_param("v", "tau", 1.0).unwrap();
    b.set_init_param("v", 0, 1.0).unwrap();
    b.edge("self", "E", "v", "v").unwrap();
    let pg = b.finish_parametric().unwrap();
    let sys = CompiledSystem::compile_parametric(&lang, &pg).unwrap();
    (lang, sys)
}

fn params_for(sys: &CompiledSystem, seed: u64) -> Vec<f64> {
    let mut p = sys.nominal_params();
    // Decay rates spanning two orders of magnitude across one lane group.
    p[sys.param_index("v", "tau").unwrap()] = 0.02 + 0.21 * (seed % 5) as f64;
    p[sys.param_index_init("v", 0).unwrap()] = 1.0 + 0.5 * (seed % 3) as f64;
    p
}

/// Voting-DP ensembles are bit-identical across worker counts at the
/// engine's configured lane width (whatever `ARK_LANES` says — the
/// lane-matrix CI job runs this at 1, 4, and 8), for ensemble sizes
/// exercising full groups, tails, and N < L.
#[test]
fn voting_dp_independent_of_worker_count() {
    let (_lang, sys) = stiffness_spread();
    let solver = DormandPrince::new(1e-8, 1e-11).voting();
    for n in [1usize, 3, 5, 8, 13] {
        let seeds = seed_range(0, n);
        let reference = Ensemble::serial()
            .run(&sys, &solver, &seeds, 0.0, 1.0)
            .params(|s| params_for(&sys, s))
            .trajectories()
            .unwrap();
        for workers in [2usize, 3, 8] {
            let got = Ensemble::new(workers)
                .run(&sys, &solver, &seeds, 0.0, 1.0)
                .params(|s| params_for(&sys, s))
                .trajectories()
                .unwrap();
            assert_eq!(reference, got, "n={n} workers={workers}");
        }
        for tr in &reference {
            assert!(tr.stats().accepted >= 1);
            // Every lane's endpoint meets the tolerance: voting only ever
            // tightens an individual lane's grid.
            let (t_end, y_end) = tr.last().unwrap();
            assert!((t_end - 1.0).abs() < 1e-12);
            assert!(y_end[0].is_finite());
        }
    }
}

/// At lane width 1 the vote degenerates exactly: a voting-DP ensemble is
/// bit-identical to the scalar PI-adaptive ensemble.
#[test]
fn voting_dp_width_one_equals_scalar_dp() {
    let (_lang, sys) = stiffness_spread();
    let dp = DormandPrince::new(1e-8, 1e-11);
    let seeds = seed_range(0, 7);
    let scalar = Ensemble::new(2)
        .with_lanes(1)
        .run(&sys, &dp, &seeds, 0.0, 1.0)
        .params(|s| params_for(&sys, s))
        .trajectories()
        .unwrap();
    let voting = Ensemble::new(2)
        .with_lanes(1)
        .run(&sys, &dp.voting(), &seeds, 0.0, 1.0)
        .params(|s| params_for(&sys, s))
        .trajectories()
        .unwrap();
    assert_eq!(scalar, voting);
}

/// The documented trade, pinned: at width > 1 a full voting group shares
/// one accepted-step grid (the minimum of its lanes' individual choices),
/// so a lane integrated in a group generally records more steps than the
/// same seed alone — results are keyed on the lane width.
#[test]
fn voting_dp_groups_share_one_voted_grid() {
    let (_lang, sys) = stiffness_spread();
    let solver = DormandPrince::new(1e-8, 1e-11).voting();
    let seeds = seed_range(0, 4);
    let grouped = Ensemble::serial()
        .with_lanes(4)
        .run(&sys, &solver, &seeds, 0.0, 1.0)
        .params(|s| params_for(&sys, s))
        .trajectories()
        .unwrap();
    // One shared grid across the group...
    for l in 1..4 {
        assert_eq!(grouped[0].times(), grouped[l].times(), "lane {l}");
    }
    // ...and at least as many accepted steps as any lane needs alone.
    let alone = Ensemble::serial()
        .with_lanes(1)
        .run(&sys, &solver, &seeds, 0.0, 1.0)
        .params(|s| params_for(&sys, s))
        .trajectories()
        .unwrap();
    let worst_alone = alone.iter().map(ark::ode::Trajectory::len).max().unwrap();
    assert!(
        grouped[0].len() >= worst_alone,
        "voted grid ({} samples) cannot be coarser than the stiffest lane alone ({worst_alone})",
        grouped[0].len()
    );
}
