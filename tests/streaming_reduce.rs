//! Streaming-reduction determinism suite: every online accumulator in
//! `ark_sim::reduce`, driven through the full `Ensemble::run(..).reduce`
//! pipeline, must match the materialize-then-reduce reference
//! (`reduce_materialized`) **bit for bit** — for every worker count and
//! lane width. The block-structured merge (one accumulator per
//! `STREAM_BLOCK`-seed block, merged serially in block order) is what makes
//! this hold; these properties pin it.

use ark::core::CompiledSystem;
use ark::ode::{Rk4, SolveError};
use ark::sim::reduce::{
    premap, reduce_materialized, Extrema, Histogram, MinMax, MomentStats, Moments, Quantiles,
    Yield, YieldCounter,
};
use ark::sim::{seed_range, Ensemble};
use proptest::prelude::*;

/// One compiled parametric decay design shared by all cases.
fn decay_system() -> (ark::core::lang::Language, CompiledSystem) {
    use ark::core::func::GraphBuilder;
    use ark::core::lang::{EdgeType, LanguageBuilder, NodeType, ProdRule, Reduction};
    use ark::core::types::SigType;
    use ark::expr::parse_expr;
    let lang = LanguageBuilder::new("rc")
        .node_type(
            NodeType::new("V", 1, Reduction::Sum)
                .attr("tau", SigType::real(0.0, 100.0))
                .init_default(SigType::real(-100.0, 100.0), 1.0),
        )
        .edge_type(EdgeType::new("E"))
        .prod(ProdRule::new(
            ("e", "E"),
            ("s", "V"),
            ("s", "V"),
            "s",
            parse_expr("-var(s)/s.tau").unwrap(),
        ))
        .finish()
        .unwrap();
    let mut b = GraphBuilder::new_parametric(&lang);
    b.node("v", "V").unwrap();
    b.set_attr_param("v", "tau", 1.0).unwrap();
    b.set_init_param("v", 0, 1.0).unwrap();
    b.edge("self", "E", "v", "v").unwrap();
    let pg = b.finish_parametric().unwrap();
    let sys = CompiledSystem::compile_parametric(&lang, &pg).unwrap();
    (lang, sys)
}

fn params_for(sys: &CompiledSystem, seed: u64) -> Vec<f64> {
    let mut p = sys.nominal_params();
    p[sys.param_index("v", "tau").unwrap()] = 0.25 + 0.0625 * (seed % 31) as f64;
    p[sys.param_index_init("v", 0).unwrap()] = 1.0 + 0.5 * (seed % 7) as f64;
    p
}

fn assert_moments_bits(a: &MomentStats, b: &MomentStats, cx: &str) {
    assert_eq!(a.count, b.count, "{cx}: count");
    assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "{cx}: mean");
    assert_eq!(a.m2.to_bits(), b.m2.to_bits(), "{cx}: m2");
}

fn assert_extrema_bits(a: &Extrema, b: &Extrema, cx: &str) {
    assert_eq!(a.count, b.count, "{cx}: count");
    assert_eq!(a.min.to_bits(), b.min.to_bits(), "{cx}: min");
    assert_eq!(a.max.to_bits(), b.max.to_bits(), "{cx}: max");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full accumulator suite (moments, extrema, quantile sketch, and
    /// a premapped yield counter, composed as one tuple reducer) streams to
    /// exactly the bits the materialized reference produces, for every
    /// worker count x lane width combination — including ensemble sizes
    /// with scalar tails and N < L.
    #[test]
    fn streaming_matches_materialized_bit_for_bit(
        n in 1usize..40,
        base in 0u64..256,
    ) {
        let (_lang, sys) = decay_system();
        let solver = Rk4 { dt: 2e-2 };
        let seeds = seed_range(base, n);
        // Materialized reference: endpoints in seed order, then the
        // canonical blocked reduction.
        let endpoints: Vec<f64> = Ensemble::serial()
            .with_lanes(1)
            .run(&sys, &solver, &seeds, 0.0, 1.0)
            .params(|s| params_for(&sys, s))
            .map(|_, _, tr, _| Ok::<_, SolveError>(tr.last().unwrap().1[0]))
            .unwrap();
        let reducer = (
            Moments,
            MinMax,
            (
                Quantiles::new(0.0, 5.0, 32),
                premap(|v: f64| v > 1.0, YieldCounter),
            ),
        );
        let want: (MomentStats, Extrema, (Histogram, Yield)) =
            reduce_materialized(&reducer, &endpoints);
        for workers in [1usize, 2, 8] {
            for lanes in [1usize, 4, 8] {
                let got = Ensemble::new(workers)
                    .with_lanes(lanes)
                    .run(&sys, &solver, &seeds, 0.0, 1.0)
                    .params(|s| params_for(&sys, s))
                    .reduce(
                        |snap, _scratch| Ok::<_, SolveError>(snap.state[0]),
                        &reducer,
                    )
                    .unwrap();
                let cx = format!("n={n} base={base} workers={workers} lanes={lanes}");
                assert_moments_bits(&got.0, &want.0, &cx);
                assert_extrema_bits(&got.1, &want.1, &cx);
                assert_eq!(got.2 .0, want.2 .0, "{cx}: histogram");
                assert_eq!(got.2 .1, want.2 .1, "{cx}: yield");
            }
        }
    }
}

/// Ensembles larger than one merge block keep the guarantee: the serial
/// streaming result equals both the materialized reference and every
/// multi-worker / laned streaming run, bit for bit.
#[test]
fn multi_block_ensembles_merge_deterministically() {
    let (_lang, sys) = decay_system();
    let solver = Rk4 { dt: 5e-2 };
    // > 2 * STREAM_BLOCK (1024) seeds, deliberately not block-aligned.
    let seeds = seed_range(7, 2500);
    let endpoints: Vec<f64> = Ensemble::serial()
        .with_lanes(1)
        .run(&sys, &solver, &seeds, 0.0, 0.5)
        .params(|s| params_for(&sys, s))
        .map(|_, _, tr, _| Ok::<_, SolveError>(tr.last().unwrap().1[0]))
        .unwrap();
    let want = reduce_materialized(&(Moments, MinMax), &endpoints);
    for workers in [1usize, 3, 8] {
        for lanes in [1usize, 4, 8] {
            let got = Ensemble::new(workers)
                .with_lanes(lanes)
                .run(&sys, &solver, &seeds, 0.0, 0.5)
                .params(|s| params_for(&sys, s))
                .reduce(
                    |snap, _scratch| Ok::<_, SolveError>(snap.state[0]),
                    &(Moments, MinMax),
                )
                .unwrap();
            let cx = format!("workers={workers} lanes={lanes}");
            assert_moments_bits(&got.0, &want.0, &cx);
            assert_extrema_bits(&got.1, &want.1, &cx);
        }
    }
}
