//! Lane-group partitioning suite: laned ensembles must be bit-identical to
//! the scalar path for *every* ensemble size — full groups, the `N % L`
//! scalar tail, and N < L (no full group at all) — at every saved
//! timestep, for both supported widths and across worker counts.
//!
//! CI's lane-matrix job additionally re-runs the golden suites with
//! `ARK_LANES` forced to 1/4/8; this file pins the partitioning logic
//! itself with explicit widths, independent of the environment.

use ark::core::CompiledSystem;
use ark::ode::Rk4;
use ark::paradigms::tln::{
    gmc_tln_language, tline_mismatch_ensemble, tln_language, MismatchKind, TlineConfig,
};
use ark::sim::{seed_range, Ensemble};
use proptest::prelude::*;

/// A small parametric decay design (one compile, params = tau + y0) so the
/// property runs hundreds of ensembles quickly.
fn decay_system() -> (ark::core::lang::Language, CompiledSystem) {
    use ark::core::func::GraphBuilder;
    use ark::core::lang::{EdgeType, LanguageBuilder, NodeType, ProdRule, Reduction};
    use ark::core::types::SigType;
    use ark::expr::parse_expr;
    let lang = LanguageBuilder::new("rc")
        .node_type(
            NodeType::new("V", 1, Reduction::Sum)
                .attr("tau", SigType::real(0.0, 100.0))
                .init_default(SigType::real(-100.0, 100.0), 1.0),
        )
        .edge_type(EdgeType::new("E"))
        .prod(ProdRule::new(
            ("e", "E"),
            ("s", "V"),
            ("s", "V"),
            "s",
            parse_expr("-var(s)/s.tau").unwrap(),
        ))
        .finish()
        .unwrap();
    let mut b = GraphBuilder::new_parametric(&lang);
    b.node("v", "V").unwrap();
    b.set_attr_param("v", "tau", 1.0).unwrap();
    b.set_init_param("v", 0, 1.0).unwrap();
    b.edge("self", "E", "v", "v").unwrap();
    let pg = b.finish_parametric().unwrap();
    let sys = CompiledSystem::compile_parametric(&lang, &pg).unwrap();
    (lang, sys)
}

fn params_for(sys: &CompiledSystem, seed: u64) -> Vec<f64> {
    let mut p = sys.nominal_params();
    p[sys.param_index("v", "tau").unwrap()] = 0.25 + 0.0625 * (seed % 31) as f64;
    p[sys.param_index_init("v", 0).unwrap()] = 1.0 + 0.5 * (seed % 7) as f64;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For random ensemble sizes (deliberately biased to N % L != 0 and
    /// N < L), random strides, and both lane widths, the laned ensemble
    /// equals the scalar ensemble bit for bit at every saved timestep —
    /// `Trajectory` equality covers every sample value and the stats.
    #[test]
    fn laned_ensembles_match_serial_bit_for_bit(
        n in 1usize..14,
        base in 0u64..512,
        stride in 1usize..8,
    ) {
        let (_lang, sys) = decay_system();
        let seeds = seed_range(base, n);
        let solver = Rk4 { dt: 2e-2 };
        let scalar = Ensemble::serial()
            .with_lanes(1)
            .run(&sys, &solver, &seeds, 0.0, 1.0)
            .stride(stride)
            .params(|s| params_for(&sys, s))
            .trajectories()
            .unwrap();
        for lanes in [4usize, 8] {
            for workers in [1usize, 2] {
                let laned = Ensemble::new(workers)
                    .with_lanes(lanes)
                    .run(&sys, &solver, &seeds, 0.0, 1.0)
                    .stride(stride)
                    .params(|s| params_for(&sys, s))
                    .trajectories()
                    .unwrap();
                prop_assert_eq!(&scalar, &laned, "n={} lanes={} workers={}", n, lanes, workers);
            }
        }
    }
}

/// The real §2.4 TLN Monte Carlo through the public ensemble entry point:
/// sizes straddling the group boundary (N < L, N = L, N % L != 0) are
/// bit-identical across explicit lane widths and worker counts.
#[test]
fn tline_ensemble_tail_sizes_match_scalar() {
    let base = tln_language();
    let gmc = gmc_tln_language(&base);
    let cfg = TlineConfig {
        mismatch: MismatchKind::Both,
        ..TlineConfig::default()
    };
    let (segments, t_end, dt, stride) = (4, 1.0e-8, 1e-10, 8);
    for n in [1usize, 3, 4, 5, 9] {
        let seeds = seed_range(0, n);
        let scalar = tline_mismatch_ensemble(
            &gmc,
            segments,
            &cfg,
            t_end,
            dt,
            stride,
            &seeds,
            &Ensemble::serial().with_lanes(1),
        )
        .unwrap();
        for lanes in [4usize, 8] {
            let laned = tline_mismatch_ensemble(
                &gmc,
                segments,
                &cfg,
                t_end,
                dt,
                stride,
                &seeds,
                &Ensemble::new(2).with_lanes(lanes),
            )
            .unwrap();
            assert_eq!(scalar, laned, "n={n} lanes={lanes}");
        }
    }
}
