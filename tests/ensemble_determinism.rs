//! Determinism suite for the `ark-sim` mismatch-ensemble engine: results
//! are keyed only by seed — never by worker count, scheduling, or the
//! in-place-buffer refactor of the integrator core.

use ark::core::CompiledSystem;
use ark::ode::{DormandPrince, Rk4};
use ark::paradigms::cnn::{
    build_cnn, cnn_language, hw_cnn_language, run_cnn, run_cnn_ensemble, CnnRun, NonIdeality,
    EDGE_TEMPLATE,
};
use ark::paradigms::image::Image;
use ark::sim::{seed_range, Ensemble};

/// The engine's foundational compile-time guarantee: one compiled system is
/// shareable by reference across the worker pool.
#[test]
fn compiled_system_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledSystem>();
    assert_send_sync::<ark::core::EvalScratch>();
    assert_send_sync::<Ensemble>();
}

fn cnn_input() -> Image {
    Image::from_ascii(&["....", ".##.", ".##.", "...."])
}

fn runs_equal(a: &CnnRun, b: &CnnRun) {
    for (r, c, v) in a.final_output.iter() {
        assert_eq!(v, b.final_output.get(r, c), "final output cell ({r},{c})");
    }
    assert_eq!(a.snapshots.len(), b.snapshots.len());
    for ((ta, ia), (tb, ib)) in a.snapshots.iter().zip(&b.snapshots) {
        assert_eq!(ta, tb);
        for (r, c, v) in ia.iter() {
            assert_eq!(v, ib.get(r, c), "snapshot t={ta} cell ({r},{c})");
        }
    }
    assert_eq!(a.convergence_time, b.convergence_time);
}

/// A 32-instance mismatched-CNN ensemble produces bit-identical
/// trajectories for worker counts 1, 2, and 8, and every per-seed result
/// matches the plain serial path (`build_cnn` + `run_cnn`), i.e. the
/// pre-ensemble way of computing the same instance.
#[test]
fn cnn_ensemble_bit_identical_across_worker_counts() {
    let base = cnn_language();
    let hw = hw_cnn_language(&base);
    let input = cnn_input();
    let seeds = seed_range(0, 32);
    let snap_times = [0.5, 1.0];

    let reference: Vec<CnnRun> = seeds
        .iter()
        .map(|&seed| {
            let inst =
                build_cnn(&hw, &input, &EDGE_TEMPLATE, NonIdeality::ZMismatch, seed).unwrap();
            run_cnn(&hw, &inst, 1.0, &snap_times).unwrap()
        })
        .collect();

    for workers in [1usize, 2, 8] {
        let runs = run_cnn_ensemble(
            &hw,
            &input,
            &EDGE_TEMPLATE,
            NonIdeality::ZMismatch,
            1.0,
            &snap_times,
            &seeds,
            &Ensemble::new(workers),
        )
        .unwrap();
        assert_eq!(runs.len(), reference.len());
        for (serial, parallel) in reference.iter().zip(&runs) {
            runs_equal(serial, parallel);
        }
    }
}

/// The compile-once/simulate-many fast path shares one `CompiledSystem`
/// across the pool and still reproduces the one-at-a-time results exactly.
#[test]
fn shared_system_integration_matches_serial() {
    let lang = cnn_language();
    let inst = build_cnn(&lang, &cnn_input(), &EDGE_TEMPLATE, NonIdeality::Ideal, 0).unwrap();
    let sys = CompiledSystem::compile(&lang, &inst.graph).unwrap();
    // Perturb the initial state per instance (the mismatch-free analogue of
    // fabricated-instance variation).
    let inits: Vec<Vec<f64>> = (0..16)
        .map(|i| {
            let mut y = sys.initial_state();
            let slot = i % y.len();
            y[slot] += 0.01 * (i as f64 + 1.0);
            y
        })
        .collect();
    let solver = Rk4 { dt: 5e-3 };
    let idx: Vec<u64> = (0..inits.len() as u64).collect();
    let serial = Ensemble::serial()
        .run(&sys, &solver, &idx, 0.0, 1.0)
        .stride(10)
        .prep(|i| (Vec::new(), inits[i as usize].clone()))
        .trajectories()
        .unwrap();
    for workers in [2usize, 8] {
        let parallel = Ensemble::new(workers)
            .run(&sys, &solver, &idx, 0.0, 1.0)
            .stride(10)
            .prep(|i| (Vec::new(), inits[i as usize].clone()))
            .trajectories()
            .unwrap();
        assert_eq!(serial, parallel, "workers {workers}");
    }
}

/// The adaptive integrator keeps its PI-controller accounting under the
/// ensemble engine: a stiff-ish CNN run rejects at least one step on every
/// instance, identically across worker counts.
#[test]
fn adaptive_cnn_ensemble_reports_rejections_deterministically() {
    let lang = cnn_language();
    let inst = build_cnn(&lang, &cnn_input(), &EDGE_TEMPLATE, NonIdeality::Ideal, 0).unwrap();
    let sys = CompiledSystem::compile(&lang, &inst.graph).unwrap();
    let solver = DormandPrince {
        h0: Some(2.0),
        ..DormandPrince::new(1e-8, 1e-10)
    };
    let inits = vec![sys.initial_state(); 4];
    let idx: Vec<u64> = (0..inits.len() as u64).collect();
    let serial = Ensemble::serial()
        .run(&sys, &solver, &idx, 0.0, 3.0)
        .prep(|i| (Vec::new(), inits[i as usize].clone()))
        .trajectories()
        .unwrap();
    let parallel = Ensemble::new(4)
        .run(&sys, &solver, &idx, 0.0, 3.0)
        .prep(|i| (Vec::new(), inits[i as usize].clone()))
        .trajectories()
        .unwrap();
    assert_eq!(serial, parallel);
    for tr in &serial {
        assert!(tr.stats().rejected >= 1, "stats {:?}", tr.stats());
    }
}
