//! The paper's §7.1 case study: CNN edge detection with analog
//! nonidealities.
//!
//! Run: `cargo run --release --example cnn_edge_detection`

use ark::paradigms::cnn::{
    build_cnn, cnn_language, grid_extern_registry, hw_cnn_language, run_cnn, NonIdeality,
    EDGE_TEMPLATE,
};
use ark::paradigms::image::Image;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let base = cnn_language();
    let hw = hw_cnn_language(&base);
    let input = Image::test_blob(14, 14);

    println!("input image:\n{}", input.to_ascii());

    // Ideal run, with validation (including the global grid check).
    let inst = build_cnn(&base, &input, &EDGE_TEMPLATE, NonIdeality::Ideal, 0)?;
    let report = ark::core::validate::validate(&base, &inst.graph, &grid_extern_registry())?;
    println!("validation: {report}");

    let run = run_cnn(&base, &inst, 5.0, &[0.25, 1.0])?;
    println!(
        "\nCNN output at t=0.25:\n{}",
        run.snapshots[0].1.binarized().to_ascii()
    );
    println!(
        "CNN output (settled):\n{}",
        run.final_output.binarized().to_ascii()
    );
    let expected = input.digital_edge_map();
    println!(
        "pixels differing from the digital edge detector: {}",
        run.final_output.diff_count(&expected)
    );

    // Non-ideal variant: template-weight mismatch corrupts the result.
    let noisy = build_cnn(&hw, &input, &EDGE_TEMPLATE, NonIdeality::GMismatch, 1)?;
    let run = run_cnn(&hw, &noisy, 5.0, &[])?;
    println!(
        "\nwith 10% template-weight mismatch: {} wrong pixels:\n{}",
        run.final_output.diff_count(&expected),
        run.final_output.binarized().to_ascii()
    );
    Ok(())
}
