//! Quickstart: define an analog compute paradigm as an Ark language, write
//! a computation in it, validate, compile to ODEs, and simulate.
//!
//! Run: `cargo run --release --example quickstart`
//!
//! The paradigm here is a toy "leaky diffusion network": cells hold a
//! charge that leaks to ground and diffuses along coupling edges — a
//! two-type language that exercises every stage of the Ark pipeline.

use ark::core::program::Program;
use ark::core::validate::ExternRegistry;
use ark::core::Value;
use ark::ode::Rk4;

const SRC: &str = r#"
lang diffuse {
    // Cells integrate charge; `tau` is the leak time constant and `c` the
    // coupling capacitance ratio.
    ntyp(1, sum) Cell {
        attr tau = real[0.01, 100];
        init(0) = real[-10, 10] default 0;
    };
    etyp Link { attr w = real[0, 10]; };

    // Leak on the mandatory self edge.
    prod(e:Link, s:Cell -> s:Cell) s <= -var(s)/s.tau;
    // Diffusion: charge flows down the gradient, symmetrically.
    prod(e:Link, s:Cell -> t:Cell) s <= e.w*(var(t)-var(s));
    prod(e:Link, s:Cell -> t:Cell) t <= e.w*(var(s)-var(t));

    // Every cell needs exactly one self edge; any number of couplings.
    cstr Cell {
        acc [ match(1, 1, Link, Cell),
              match(0, inf, Link, Cell->[Cell]),
              match(0, inf, Link, [Cell]->Cell) ]
    };
}

// A 3-cell chain with the first cell charged.
func chain(w: real[0, 10]) uses diffuse {
    node a : Cell;  node b : Cell;  node c : Cell;
    edge <a, a> sa : Link;  edge <b, b> sb : Link;  edge <c, c> sc : Link;
    edge <a, b> ab : Link;  edge <b, c> bc : Link;
    set-attr a.tau = 10.0;  set-attr b.tau = 10.0;  set-attr c.tau = 10.0;
    set-attr sa.w = 0.0;    set-attr sb.w = 0.0;    set-attr sc.w = 0.0;
    set-attr ab.w = w;      set-attr bc.w = w;
    set-init a(0) = 1.0;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse the program: language + function definitions.
    let program = Program::parse(SRC)?;

    // Invoke the function, validate the graph, compile to ODEs.
    let (graph, system) = program.build(
        "chain",
        &[Value::Real(2.0)],
        /*seed*/ 0,
        &ExternRegistry::new(),
    )?;
    println!(
        "built `{}` graph: {} nodes, {} edges",
        graph.lang_name(),
        graph.num_nodes(),
        graph.num_edges()
    );
    println!("\ngenerated differential equations:");
    for eq in system.equations() {
        println!("  {eq}");
    }

    // Transient simulation.
    let tr = Rk4 { dt: 1e-3 }.integrate(&system.bind(), 0.0, &system.initial_state(), 2.0, 100)?;
    println!("\n t      a       b       c");
    for &t in &[0.0, 0.5, 1.0, 1.5, 2.0] {
        let y = tr.at(t);
        println!(
            "{t:4.1}  {:.4}  {:.4}  {:.4}",
            y[system.state_index("a").unwrap()],
            y[system.state_index("b").unwrap()],
            y[system.state_index("c").unwrap()],
        );
    }
    println!("\ncharge diffuses from `a` toward `c` while slowly leaking away.");
    Ok(())
}
