//! The paper's §2 case study: a transmission-line-network PUF.
//!
//! Run: `cargo run --release --example tln_puf`
//!
//! Builds a challenge-reconfigurable branched t-line in the GmC-TLN
//! language, interrogates several "fabricated" instances (mismatch seeds),
//! and reports the standard PUF quality metrics — including the paper's
//! §2.4 conclusion that Gm mismatch is a much better entropy source than
//! Cint mismatch.

use ark::paradigms::tln::{gmc_tln_language, tln_language, MismatchKind, TlineConfig};
use ark::puf::design::{challenge_bits, hamming, PufDesign};
use ark::puf::metrics::{evaluate, EvalConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = tln_language();
    let gmc = gmc_tln_language(&base);

    let design = PufDesign {
        spacing: 2,
        sites: 3,
        stub_len: 2,
        window_start: 0.5e-8,
        window_end: 5e-8,
        response_bits: 24,
        ..PufDesign::default()
    };

    println!("== TLN PUF (paper §2) ==");
    println!(
        "{} challenge bits, {} response bits\n",
        design.sites, design.response_bits
    );

    // Challenge-response pairs for two different chips.
    let challenge = challenge_bits(0b101, design.sites);
    let (reference, ref_idx) = design.reference(&gmc, &challenge)?;
    let chip1 = design.respond(&gmc, &reference, ref_idx, &challenge, 1, 0.0, 0)?;
    let chip2 = design.respond(&gmc, &reference, ref_idx, &challenge, 2, 0.0, 0)?;
    let render = |r: &[bool]| {
        r.iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect::<String>()
    };
    println!("challenge 101 -> chip 1: {}", render(&chip1));
    println!("challenge 101 -> chip 2: {}", render(&chip2));
    println!(
        "inter-chip Hamming distance: {}/{}\n",
        hamming(&chip1, &chip2),
        chip1.len()
    );

    // Quality metrics for both entropy sources.
    let cfg = EvalConfig {
        instances: 5,
        challenges: 3,
        remeasures: 2,
        noise_sigma: 5e-4,
    };
    for (label, kind) in [
        ("Gm mismatch", MismatchKind::Gm),
        ("Cint mismatch", MismatchKind::Cint),
    ] {
        let d = PufDesign {
            cfg: TlineConfig {
                mismatch: kind,
                ..design.cfg
            },
            ..design.clone()
        };
        let m = evaluate(&gmc, &d, &cfg)?;
        println!(
            "{label:>14}: uniqueness {:.3} (ideal 0.5), intra-distance {:.3} (ideal 0), uniformity {:.3}",
            m.uniqueness, m.intra_distance, m.uniformity
        );
    }
    println!("\npaper conclusion: TLN PUFs should derive their entropy from Gm mismatch.");
    Ok(())
}
