//! The paper's §7.2 case study: solving max-cut with coupled oscillators.
//!
//! Run: `cargo run --release --example obc_maxcut`

use ark::paradigms::maxcut::{solve, CouplingKind, MaxCutProblem};
use ark::paradigms::obc::{obc_language, ofs_obc_language};
use std::f64::consts::PI;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let base = obc_language();
    let ofs = ofs_obc_language(&base);

    // A 5-vertex graph: a square with one diagonal.
    let problem = MaxCutProblem {
        n: 5,
        edges: vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (3, 4)],
    };
    println!("graph: {} vertices, edges {:?}", problem.n, problem.edges);
    println!("brute-force max cut: {}\n", problem.max_cut_value());

    let outcome = solve(&base, &problem, CouplingKind::Ideal, 0.01 * PI, 4)?;
    println!("oscillator phases (rad):");
    for (i, p) in outcome.phases.iter().enumerate() {
        let part = if (p - PI).abs() < PI / 2.0 { 1 } else { 0 };
        println!("  osc{i}: {p:.4}  -> partition {part}");
    }
    println!("\nsynchronized: {}", outcome.synchronized());
    println!("cut found: {:?} (optimum {})", outcome.cut, outcome.optimum);
    println!("solved optimally: {}\n", outcome.solved());

    // The same instance on offset-afflicted hardware, read out at both
    // tolerances — the paper's Table 1 story in miniature.
    let noisy = solve(&ofs, &problem, CouplingKind::Offset, 0.01 * PI, 4)?;
    println!(
        "with integrator offset @ d=0.01π: synchronized = {}",
        noisy.synchronized()
    );
    let relaxed = ark::paradigms::maxcut::classify_phases(&noisy.phases, 0.1 * PI);
    println!(
        "same phases    @ d=0.10π: synchronized = {} (cut {:?})",
        relaxed.is_some(),
        relaxed.map(|p| problem.cut_value(p))
    );
    Ok(())
}
